package main

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"testing"
	"time"
)

// TestMain lets tests re-exec this binary as the real diva CLI: the child
// process sets DIVA_RUN_MAIN=1 and runs main() with whatever arguments the
// test passed, so the signal-handling path is exercised exactly as a user
// would hit it — no go-build round trip needed.
func TestMain(m *testing.M) {
	if os.Getenv("DIVA_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// TestInterruptEndsHoldCleanly is the satellite-2 acceptance: `diva -listen
// -hold` parked in its hold window must exit with status 0 on SIGINT — the
// signal ends the hold early, the ops server shuts down gracefully, and the
// canonical run record was emitted before the wait began.
func TestInterruptEndsHoldCleanly(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe,
		"-in", "../../testdata/patients.csv",
		"-constraints", "../../testdata/patients.sigma",
		"-k", "2", "-seed", "42",
		"-listen", "127.0.0.1:0", "-hold", "1h",
		"-log-format", "json")
	cmd.Env = append(os.Environ(), "DIVA_RUN_MAIN=1")
	cmd.Stdout = nil // anonymized CSV, discarded
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Scan the structured log until both the ops server announcement and the
	// canonical run record have appeared: the process is then inside -hold.
	type line struct {
		Msg  string `json:"msg"`
		Addr string `json:"addr"`
	}
	var addr string
	sawRun := false
	sc := bufio.NewScanner(stderr)
	deadline := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	for sc.Scan() && (addr == "" || !sawRun) {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("stderr line is not JSON with -log-format json: %q", sc.Text())
		}
		switch l.Msg {
		case "ops server listening":
			addr = l.Addr
		case "diva run":
			sawRun = true
		}
	}
	deadline.Stop()
	if addr == "" || !sawRun {
		t.Fatalf("child never reached the hold window (addr=%q, canonical record=%v)", addr, sawRun)
	}
	go func() {
		for sc.Scan() {
		}
	}()

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit after SIGINT: %v (want status 0)", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("process did not exit within 15s of SIGINT")
	}
}
