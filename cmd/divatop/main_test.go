package main

import (
	"strings"
	"testing"
	"time"

	"diva/internal/trace"
)

func TestReadSSEParsesFrames(t *testing.T) {
	stream := strings.Join([]string{
		": comment line",
		"event: phase-start",
		`data: {"run":1,"entry":{"seq":1,"at_ns":10,"kind":"phase-start","phase":"color","node":0,"n":0,"depth":0,"worker":0}}`,
		"",
		"event: progress",
		`data: {"run":1,"entry":{"seq":2,"at_ns":20,"kind":"progress","node":0,"n":0,"depth":7,"worker":-1,"steps":4096,"backtracks":12}}`,
		"",
		"event: run-end",
		`data: {"run":1,"entry":{"seq":3,"at_ns":30,"kind":"run-end","label":"ok","elapsed_ns":1000000,"node":0,"n":0,"depth":7,"worker":0,"steps":4096}}`,
		"",
	}, "\n") + "\n"
	var frames []frame
	err := readSSE(strings.NewReader(stream), func(f frame) bool {
		frames = append(frames, f)
		return true
	})
	if err != nil && err.Error() != "EOF" {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("parsed %d frames, want 3", len(frames))
	}
	if frames[0].event != "phase-start" || frames[0].entry.Event.Phase != trace.PhaseColor {
		t.Fatalf("frame 0 = %+v", frames[0])
	}
	if frames[1].entry.Event.Steps != 4096 || frames[1].entry.Event.Depth != 7 {
		t.Fatalf("frame 1 = %+v", frames[1])
	}
	if frames[2].entry.Event.Kind != trace.KindRunEnd || frames[2].entry.Event.Label != "ok" {
		t.Fatalf("frame 2 = %+v", frames[2])
	}
}

func TestReadSSEStopsWhenApplyReturnsFalse(t *testing.T) {
	stream := "event: progress\ndata: {\"run\":1,\"entry\":{\"seq\":1,\"kind\":\"progress\",\"node\":0,\"n\":0,\"depth\":0,\"worker\":0}}\n\n" +
		"event: progress\ndata: {\"run\":1,\"entry\":{\"seq\":2,\"kind\":\"progress\",\"node\":0,\"n\":0,\"depth\":0,\"worker\":0}}\n\n"
	n := 0
	if err := readSSE(strings.NewReader(stream), func(frame) bool { n++; return false }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("apply ran %d times after returning false, want 1", n)
	}
}

func TestBoardRender(t *testing.T) {
	b := newBoard()
	b.apply(frame{event: "phase-start", run: 2, entry: trace.FlightEntry{
		Seq: 1, Event: trace.Event{Kind: trace.KindPhaseStart, Phase: trace.PhaseColor}}})
	b.apply(frame{event: "progress", run: 2, entry: trace.FlightEntry{
		Seq: 2, Event: trace.Event{Kind: trace.KindProgress, Steps: 1234, Depth: 9, Backtracks: 3, Nogoods: 2, Worker: -1}}})
	b.apply(frame{event: "phase-start", run: 1, entry: trace.FlightEntry{
		Seq: 1, Event: trace.Event{Kind: trace.KindPhaseStart, Phase: trace.PhaseBind}}})
	b.apply(frame{event: "run-end", run: 1, entry: trace.FlightEntry{
		Seq: 2, Event: trace.Event{Kind: trace.KindRunEnd, Label: "ok", Elapsed: 42 * time.Millisecond}}})
	out := b.render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("render produced %d lines, want header + 2 runs:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "RUN") {
		t.Fatalf("missing header: %q", lines[0])
	}
	// Runs render in ID order: run 1 (finished) before run 2 (live).
	if !strings.Contains(lines[1], "ok") || !strings.Contains(lines[1], "42ms") {
		t.Fatalf("run 1 line = %q, want outcome ok and elapsed 42ms", lines[1])
	}
	if !strings.Contains(lines[2], "color") || !strings.Contains(lines[2], "1234") || !strings.Contains(lines[2], "running") {
		t.Fatalf("run 2 line = %q, want phase color, 1234 steps, running", lines[2])
	}
}
