// Command divatop is a terminal follower for live DIVA runs: it subscribes
// to an ops server's SSE event stream (/debug/diva/events) and renders one
// line per run — current phase, coloring depth, search steps, backtracks,
// learned nogoods, heartbeats, state — updating in place like top(1).
//
// Usage:
//
//	divatop [-addr 127.0.0.1:9090] [-run 3] [-interval 500ms] [-once]
//
// -run follows a single run (default: all runs the server knows). -once
// prints a single snapshot once the first run reaches a terminal state (or
// the stream ends) and exits — the mode CI smokes use. Without -once the
// follower runs until the stream closes or the process is interrupted; the
// display rewrites in place on a terminal and appends snapshots otherwise.
//
// The ops server replays each run's flight recorder on connect, so divatop
// started after a short run still shows its final state and outcome.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"diva/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9090", "ops server address (host:port)")
		run      = flag.Uint64("run", 0, "follow only this run ID (0 = all runs)")
		interval = flag.Duration("interval", 500*time.Millisecond, "render interval")
		once     = flag.Bool("once", false, "print one snapshot after the first terminal run event (or stream end) and exit")
	)
	flag.Parse()

	target := "all"
	if *run > 0 {
		target = fmt.Sprint(*run)
	}
	url := fmt.Sprintf("http://%s/debug/diva/events?run=%s", *addr, target)
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("%s: %s", url, resp.Status))
	}

	board := newBoard()
	done := make(chan struct{})
	go func() {
		defer close(done)
		err := readSSE(resp.Body, func(f frame) bool {
			board.apply(f)
			return !(*once && f.event == "run-end")
		})
		if err != nil && err != io.EOF {
			fmt.Fprintln(os.Stderr, "divatop: stream:", err)
		}
	}()

	if *once {
		<-done
		fmt.Print(board.render())
		return
	}
	inPlace := isTerminal(os.Stdout)
	t := time.NewTicker(*interval)
	defer t.Stop()
	prevLines := 0
	for {
		select {
		case <-t.C:
		case <-done:
			prevLines = draw(board, inPlace, prevLines)
			return
		}
		prevLines = draw(board, inPlace, prevLines)
	}
}

// draw renders the board; on a terminal it first rewinds over the previous
// snapshot so the display updates in place.
func draw(b *board, inPlace bool, prevLines int) int {
	out := b.render()
	if inPlace && prevLines > 0 {
		fmt.Printf("\x1b[%dA\x1b[J", prevLines)
	}
	fmt.Print(out)
	return strings.Count(out, "\n")
}

func isTerminal(f *os.File) bool {
	st, err := f.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "divatop:", err)
	os.Exit(1)
}

// frame is one parsed SSE frame: the event name and its decoded payload.
type frame struct {
	event string
	run   uint64
	entry trace.FlightEntry
}

// ssePayload mirrors the ops server's SSE data field.
type ssePayload struct {
	Run   uint64            `json:"run"`
	Entry trace.FlightEntry `json:"entry"`
}

// readSSE parses a Server-Sent Events stream, calling apply for every
// complete frame. apply returning false stops the read. Lines other than
// "event:"/"data:" (comments, ids) are ignored, as are frames whose data is
// not a run-event payload.
func readSSE(r io.Reader, apply func(frame) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data != "" {
				var p ssePayload
				if err := json.Unmarshal([]byte(data), &p); err == nil {
					if !apply(frame{event: event, run: p.Run, entry: p.Entry}) {
						return nil
					}
				}
			}
			event, data = "", ""
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return io.EOF
}

// runRow is the rendered state of one run.
type runRow struct {
	id         uint64
	phase      string
	depth      int
	steps      int
	backtracks int
	nogoods    int
	heartbeats int
	state      string // "running" until a run-end event names the outcome
	elapsed    time.Duration
}

// board accumulates run state from the event stream. Goroutine-safe: the
// reader applies frames while the render loop snapshots.
type board struct {
	mu   sync.Mutex
	runs map[uint64]*runRow
}

func newBoard() *board { return &board{runs: make(map[uint64]*runRow)} }

func (b *board) apply(f frame) {
	b.mu.Lock()
	defer b.mu.Unlock()
	row, ok := b.runs[f.run]
	if !ok {
		row = &runRow{id: f.run, state: "running"}
		b.runs[f.run] = row
	}
	ev := f.entry.Event
	switch ev.Kind {
	case trace.KindPhaseStart:
		row.phase = string(ev.Phase)
	case trace.KindProgress:
		row.heartbeats++
		if ev.Steps > row.steps {
			row.steps = ev.Steps
		}
		row.depth = ev.Depth
		row.backtracks = ev.Backtracks
		row.nogoods = ev.Nogoods
	case trace.KindNogood:
		row.nogoods += max(ev.N, 1)
	case trace.KindRunEnd:
		row.state = ev.Label
		row.elapsed = ev.Elapsed
		if ev.Steps > row.steps {
			row.steps = ev.Steps
		}
	}
}

// render returns the board as a fixed-width table, runs in ID order.
func (b *board) render() string {
	b.mu.Lock()
	rows := make([]*runRow, 0, len(b.runs))
	for _, row := range b.runs {
		r := *row
		rows = append(rows, &r)
	}
	b.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s %-10s %6s %9s %9s %8s %5s %-9s %s\n",
		"RUN", "PHASE", "DEPTH", "STEPS", "BKTRACKS", "NOGOODS", "HB", "STATE", "ELAPSED")
	for _, r := range rows {
		elapsed := ""
		if r.elapsed > 0 {
			elapsed = r.elapsed.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&sb, "%-5d %-10s %6d %9d %9d %8d %5d %-9s %s\n",
			r.id, r.phase, r.depth, r.steps, r.backtracks, r.nogoods, r.heartbeats, r.state, elapsed)
	}
	return sb.String()
}
