// Command tracecheck validates a Chrome trace-event JSON file (the format
// `diva -profile` writes and Perfetto/chrome://tracing load): the document
// must parse, carry a non-empty traceEvents array, and every event must have
// a name, a phase, a non-negative timestamp, and — for complete ("X")
// events — a non-negative duration. The aggregate instant events the profile
// exporter derives from trace.KindShard and trace.KindSplit streams (cat
// "shard" and "split") must additionally carry their well-formed argument
// sets: a shard plan needs non-negative components/component_rows/
// rest_shards/rest_rows, baseline cuts need non-negative splits/leaves/
// cut_wall_us/max_depth with leaves > 0 whenever cuts were made. Exit status
// 0 means the file is loadable; 1 names the first violation. It exists so CI
// can assert profile exports without a browser.
//
// With -flight the argument is instead a flight-recorder dump (the JSON the
// ops server serves at /debug/diva/runs/{id}/events): every event kind must
// parse, sequence numbers must be consecutive and ascending, offsets
// monotone non-decreasing, and the seen total must match the newest retained
// entry.
//
// Usage:
//
//	tracecheck trace.json
//	tracecheck -flight events.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"diva/internal/trace"
)

type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string                     `json:"name"`
	Ph   string                     `json:"ph"`
	Ts   *float64                   `json:"ts"`
	Dur  *float64                   `json:"dur"`
	Pid  *int                       `json:"pid"`
	Tid  *int                       `json:"tid"`
	Cat  string                     `json:"cat"`
	Args map[string]json.RawMessage `json:"args"`
}

func main() {
	flight := flag.Bool("flight", false, "validate a flight-recorder dump (/debug/diva/runs/{id}/events JSON) instead of a Chrome trace")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-flight] file.json")
		os.Exit(2)
	}
	checker := check
	if *flight {
		checker = checkFlight
	}
	if err := checker(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	fmt.Println("tracecheck: ok")
}

// flightDoc mirrors the ops server's /debug/diva/runs/{id}/events response.
// FlightEntry's UnmarshalJSON rejects unknown event kinds, so decoding alone
// validates the kind vocabulary.
type flightDoc struct {
	Run    uint64              `json:"run"`
	Seen   uint64              `json:"seen"`
	Events []trace.FlightEntry `json:"events"`
}

// checkFlight validates a flight-recorder dump: parseable kinds, consecutive
// ascending sequence numbers, monotone offsets, and a seen total matching
// the newest retained entry.
func checkFlight(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc flightDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if doc.Run == 0 {
		return fmt.Errorf("%s: missing run ID", path)
	}
	if len(doc.Events) == 0 {
		return fmt.Errorf("%s: events is empty", path)
	}
	kinds := map[string]int{}
	for i, e := range doc.Events {
		if e.Seq == 0 {
			return fmt.Errorf("%s: event %d has no sequence number", path, i)
		}
		if i > 0 {
			if e.Seq != doc.Events[i-1].Seq+1 {
				return fmt.Errorf("%s: event %d: seq %d follows %d (ring tail must be gap-free)",
					path, i, e.Seq, doc.Events[i-1].Seq)
			}
			if e.At < doc.Events[i-1].At {
				return fmt.Errorf("%s: event %d: offset %v precedes %v", path, i, e.At, doc.Events[i-1].At)
			}
		}
		if e.At < 0 {
			return fmt.Errorf("%s: event %d has a negative offset", path, i)
		}
		kinds[e.Event.Kind.String()]++
	}
	if last := doc.Events[len(doc.Events)-1].Seq; doc.Seen != last {
		return fmt.Errorf("%s: seen %d does not match newest entry seq %d", path, doc.Seen, last)
	}
	fmt.Printf("tracecheck: %s: run %d, %d events retained of %d seen (",
		path, doc.Run, len(doc.Events), doc.Seen)
	first := true
	for k := trace.KindPhaseStart; k <= trace.KindRunEnd; k++ {
		if kinds[k.String()] == 0 {
			continue
		}
		if !first {
			fmt.Print(", ")
		}
		first = false
		fmt.Printf("%d %s", kinds[k.String()], k)
	}
	fmt.Println(")")
	return nil
}

// shardArgs and splitArgs are the argument sets the profile exporter stamps
// on its KindShard/KindSplit aggregate events; every key must be present and
// non-negative for the event to be considered well-formed.
var (
	shardArgs = []string{"components", "component_rows", "rest_shards", "rest_rows"}
	splitArgs = []string{"splits", "leaves", "cut_wall_us", "max_depth"}
)

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s: traceEvents is empty", path)
	}
	counts := map[string]int{}
	cats := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("%s: event %d has no name", path, i)
		}
		if ev.Ph == "" {
			return fmt.Errorf("%s: event %d (%q) has no phase", path, i, ev.Name)
		}
		if ev.Ts == nil || *ev.Ts < 0 {
			return fmt.Errorf("%s: event %d (%q) has a missing or negative ts", path, i, ev.Name)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("%s: event %d (%q) lacks pid/tid", path, i, ev.Name)
		}
		if ev.Ph == "X" && (ev.Dur == nil || *ev.Dur < 0) {
			return fmt.Errorf("%s: complete event %d (%q) has a missing or negative dur", path, i, ev.Name)
		}
		switch ev.Cat {
		case "shard":
			if err := checkArgs(ev, shardArgs); err != nil {
				return fmt.Errorf("%s: shard event %d: %w", path, i, err)
			}
		case "split":
			if err := checkArgs(ev, splitArgs); err != nil {
				return fmt.Errorf("%s: split event %d: %w", path, i, err)
			}
			if err := checkLeaves(ev); err != nil {
				return fmt.Errorf("%s: split event %d: %w", path, i, err)
			}
		}
		counts[ev.Ph]++
		if ev.Cat != "" {
			cats[ev.Cat]++
		}
	}
	fmt.Printf("tracecheck: %s: %d events (", path, len(doc.TraceEvents))
	first := true
	for _, ph := range []string{"M", "X", "B", "E", "i"} {
		if counts[ph] == 0 {
			continue
		}
		if !first {
			fmt.Print(", ")
		}
		first = false
		fmt.Printf("%d %s", counts[ph], ph)
	}
	fmt.Print(")")
	for _, cat := range []string{"shard", "split"} {
		if cats[cat] > 0 {
			fmt.Printf(", %d %s", cats[cat], cat)
		}
	}
	fmt.Println()
	return nil
}

// checkArgs asserts every named argument is present and a non-negative
// number.
func checkArgs(ev traceEvent, keys []string) error {
	if ev.Args == nil {
		return fmt.Errorf("(%q) has no args", ev.Name)
	}
	for _, key := range keys {
		raw, ok := ev.Args[key]
		if !ok {
			return fmt.Errorf("(%q) missing arg %q", ev.Name, key)
		}
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil {
			return fmt.Errorf("(%q) arg %q is not a number: %s", ev.Name, key, raw)
		}
		if v < 0 {
			return fmt.Errorf("(%q) arg %q is negative: %g", ev.Name, key, v)
		}
	}
	return nil
}

// checkLeaves enforces the split invariant: any event reporting cuts must
// also report the leaf partitions those cuts produced.
func checkLeaves(ev traceEvent) error {
	var splits, leaves float64
	json.Unmarshal(ev.Args["splits"], &splits)
	json.Unmarshal(ev.Args["leaves"], &leaves)
	if splits > 0 && leaves == 0 {
		return fmt.Errorf("(%q) reports %g splits but zero leaves", ev.Name, splits)
	}
	return nil
}
