// Command tracecheck validates a Chrome trace-event JSON file (the format
// `diva -profile` writes and Perfetto/chrome://tracing load): the document
// must parse, carry a non-empty traceEvents array, and every event must have
// a name, a phase, a non-negative timestamp, and — for complete ("X")
// events — a non-negative duration. The aggregate instant events the profile
// exporter derives from trace.KindShard and trace.KindSplit streams (cat
// "shard" and "split") must additionally carry their well-formed argument
// sets: a shard plan needs non-negative components/component_rows/
// rest_shards/rest_rows, baseline cuts need non-negative splits/leaves/
// cut_wall_us/max_depth with leaves > 0 whenever cuts were made. Exit status
// 0 means the file is loadable; 1 names the first violation. It exists so CI
// can assert profile exports without a browser.
//
// Usage:
//
//	tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string                     `json:"name"`
	Ph   string                     `json:"ph"`
	Ts   *float64                   `json:"ts"`
	Dur  *float64                   `json:"dur"`
	Pid  *int                       `json:"pid"`
	Tid  *int                       `json:"tid"`
	Cat  string                     `json:"cat"`
	Args map[string]json.RawMessage `json:"args"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json")
		os.Exit(2)
	}
	if err := check(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	fmt.Println("tracecheck: ok")
}

// shardArgs and splitArgs are the argument sets the profile exporter stamps
// on its KindShard/KindSplit aggregate events; every key must be present and
// non-negative for the event to be considered well-formed.
var (
	shardArgs = []string{"components", "component_rows", "rest_shards", "rest_rows"}
	splitArgs = []string{"splits", "leaves", "cut_wall_us", "max_depth"}
)

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s: traceEvents is empty", path)
	}
	counts := map[string]int{}
	cats := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("%s: event %d has no name", path, i)
		}
		if ev.Ph == "" {
			return fmt.Errorf("%s: event %d (%q) has no phase", path, i, ev.Name)
		}
		if ev.Ts == nil || *ev.Ts < 0 {
			return fmt.Errorf("%s: event %d (%q) has a missing or negative ts", path, i, ev.Name)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("%s: event %d (%q) lacks pid/tid", path, i, ev.Name)
		}
		if ev.Ph == "X" && (ev.Dur == nil || *ev.Dur < 0) {
			return fmt.Errorf("%s: complete event %d (%q) has a missing or negative dur", path, i, ev.Name)
		}
		switch ev.Cat {
		case "shard":
			if err := checkArgs(ev, shardArgs); err != nil {
				return fmt.Errorf("%s: shard event %d: %w", path, i, err)
			}
		case "split":
			if err := checkArgs(ev, splitArgs); err != nil {
				return fmt.Errorf("%s: split event %d: %w", path, i, err)
			}
			if err := checkLeaves(ev); err != nil {
				return fmt.Errorf("%s: split event %d: %w", path, i, err)
			}
		}
		counts[ev.Ph]++
		if ev.Cat != "" {
			cats[ev.Cat]++
		}
	}
	fmt.Printf("tracecheck: %s: %d events (", path, len(doc.TraceEvents))
	first := true
	for _, ph := range []string{"M", "X", "B", "E", "i"} {
		if counts[ph] == 0 {
			continue
		}
		if !first {
			fmt.Print(", ")
		}
		first = false
		fmt.Printf("%d %s", counts[ph], ph)
	}
	fmt.Print(")")
	for _, cat := range []string{"shard", "split"} {
		if cats[cat] > 0 {
			fmt.Printf(", %d %s", cats[cat], cat)
		}
	}
	fmt.Println()
	return nil
}

// checkArgs asserts every named argument is present and a non-negative
// number.
func checkArgs(ev traceEvent, keys []string) error {
	if ev.Args == nil {
		return fmt.Errorf("(%q) has no args", ev.Name)
	}
	for _, key := range keys {
		raw, ok := ev.Args[key]
		if !ok {
			return fmt.Errorf("(%q) missing arg %q", ev.Name, key)
		}
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil {
			return fmt.Errorf("(%q) arg %q is not a number: %s", ev.Name, key, raw)
		}
		if v < 0 {
			return fmt.Errorf("(%q) arg %q is negative: %g", ev.Name, key, v)
		}
	}
	return nil
}

// checkLeaves enforces the split invariant: any event reporting cuts must
// also report the leaf partitions those cuts produced.
func checkLeaves(ev traceEvent) error {
	var splits, leaves float64
	json.Unmarshal(ev.Args["splits"], &splits)
	json.Unmarshal(ev.Args["leaves"], &leaves)
	if splits > 0 && leaves == 0 {
		return fmt.Errorf("(%q) reports %g splits but zero leaves", ev.Name, splits)
	}
	return nil
}
