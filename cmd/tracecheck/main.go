// Command tracecheck validates a Chrome trace-event JSON file (the format
// `diva -profile` writes and Perfetto/chrome://tracing load): the document
// must parse, carry a non-empty traceEvents array, and every event must have
// a name, a phase, a non-negative timestamp, and — for complete ("X")
// events — a non-negative duration. Exit status 0 means the file is loadable;
// 1 names the first violation. It exists so CI can assert profile exports
// without a browser.
//
// Usage:
//
//	tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json")
		os.Exit(2)
	}
	if err := check(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	fmt.Println("tracecheck: ok")
}

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s: traceEvents is empty", path)
	}
	counts := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("%s: event %d has no name", path, i)
		}
		if ev.Ph == "" {
			return fmt.Errorf("%s: event %d (%q) has no phase", path, i, ev.Name)
		}
		if ev.Ts == nil || *ev.Ts < 0 {
			return fmt.Errorf("%s: event %d (%q) has a missing or negative ts", path, i, ev.Name)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("%s: event %d (%q) lacks pid/tid", path, i, ev.Name)
		}
		if ev.Ph == "X" && (ev.Dur == nil || *ev.Dur < 0) {
			return fmt.Errorf("%s: complete event %d (%q) has a missing or negative dur", path, i, ev.Name)
		}
		counts[ev.Ph]++
	}
	fmt.Printf("tracecheck: %s: %d events (", path, len(doc.TraceEvents))
	first := true
	for _, ph := range []string{"M", "X", "B", "E", "i"} {
		if counts[ph] == 0 {
			continue
		}
		if !first {
			fmt.Print(", ")
		}
		first = false
		fmt.Printf("%d %s", counts[ph], ph)
	}
	fmt.Println(")")
	return nil
}
