// Command divabench regenerates the tables and figures of the paper's
// evaluation section on the synthetic stand-in datasets.
//
// Usage:
//
//	divabench [-exp id[,id...]] [-scale 0.1] [-seed N] [-k 10] [-sigma 8]
//	          [-csv] [-json] [-bench-out BENCH_x.json] [-quiet]
//
// With no -exp, every experiment runs in paper order. -scale multiplies the
// |R| sweeps (1.0 = the paper's full sizes; expect hours). -csv prints
// machine-readable series instead of aligned text; -json emits one JSON
// document holding every experiment's table together with the engine's
// per-phase wall-time breakdown (bind, build-graph, color, suppress,
// baseline, integrate, verify) accumulated while the experiment ran. In
// text mode the same breakdown appears as a note under each table.
//
// -bench-out writes a BENCH_*.json snapshot — the reproduction command, the
// harness configuration, and every table with its phase seconds and engine
// counter deltas — the format the repo's BENCH_* trajectory files use for
// cross-PR performance comparisons. When a run-history ledger is configured
// (-history-dir, default $DIVA_HISTORY_DIR), the same tables also append to
// it as one record per experiment, putting the bench trajectory on the
// ledger `divahist diff`/`gate` compare.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"diva/internal/bench"
	"diva/internal/history"
	"diva/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "", "comma-separated experiment ids (default: all); one of table4, table5, fig4a..fig4d, fig5a..fig5d")
		scale    = flag.Float64("scale", 0.1, "scale factor for |R| sweeps (1.0 = paper sizes)")
		seed     = flag.Uint64("seed", 0, "random seed (0 = harness default)")
		k        = flag.Int("k", 0, "default privacy parameter k (0 = harness default 10)")
		sigma    = flag.Int("sigma", 0, "default |Sigma| (0 = harness default 8)")
		baseline = flag.String("baseline", "", "rest-row partitioner for DIVA runs: empty = engine default (parallel mondrian), k-member = pre-API sampled greedy")
		csvOut   = flag.Bool("csv", false, "emit CSV series instead of aligned text")
		jsonOut  = flag.Bool("json", false, "emit one JSON document with every table and its phase breakdown")
		outDir   = flag.String("out", "", "additionally write one <id>.csv per experiment into this directory")
		benchOut = flag.String("bench-out", "", "write a BENCH_*.json snapshot (every table with its phase seconds and engine counter deltas) to this file")
		histDir  = flag.String("history-dir", os.Getenv(history.EnvDir), "with -bench-out, additionally append one record per table to the run-history ledger in this directory (default $DIVA_HISTORY_DIR)")
		quiet    = flag.Bool("quiet", false, "suppress per-point progress on stderr")
	)
	flag.Parse()

	cfg := bench.Config{
		Scale:          *scale,
		Seed:           *seed,
		K:              *k,
		NumConstraints: *sigma,
		Baseline:       *baseline,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	var ids []string
	if *exp == "" {
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	exit := 0
	var tables []*bench.Table
	collect := *jsonOut || *benchOut != ""
	for _, id := range ids {
		e, ok := bench.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "divabench: unknown experiment %q\n", id)
			exit = 2
			continue
		}
		// The engine folds every run's phase timings into the process-wide
		// metrics registry; the delta across e.Run is this experiment's
		// phase breakdown.
		before := trace.GlobalTotals()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "divabench: %s: %v\n", e.ID, err)
			exit = 1
			continue
		}
		phases := trace.PhaseSecondsSince(before)
		if len(phases) > 0 {
			table.PhaseSeconds = make(map[string]float64, len(phases))
			for ph, s := range phases {
				table.PhaseSeconds[string(ph)] = s
			}
			table.Notes = append(table.Notes, "engine phases: "+trace.FormatPhaseSeconds(phases))
		}
		// Per-config engine counters: the registry delta across this
		// experiment (runs, search effort, candidate-cache traffic).
		delta := trace.GlobalTotals().Delta(before)
		if delta.Runs > 0 {
			table.Engine = &delta
		}
		if collect {
			tables = append(tables, table)
		}
		if !*jsonOut {
			printTable(os.Stdout, table, *csvOut)
		}
		if *outDir != "" {
			if err := writeCSVFile(*outDir, table); err != nil {
				fmt.Fprintf(os.Stderr, "divabench: %s: %v\n", e.ID, err)
				exit = 1
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintf(os.Stderr, "divabench: %v\n", err)
			exit = 1
		}
	}
	if *benchOut != "" {
		if err := writeBenchSnapshot(*benchOut, cfg, ids, tables); err != nil {
			fmt.Fprintf(os.Stderr, "divabench: %v\n", err)
			exit = 1
		}
		if *histDir != "" {
			if err := appendHistory(*histDir, cfg, tables); err != nil {
				fmt.Fprintf(os.Stderr, "divabench: %v\n", err)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}

// benchSnapshot is the BENCH_*.json schema: the reproduction command, the
// harness configuration, and every table with its per-phase seconds and
// engine counter deltas — the bench trajectory a later PR's snapshot is
// compared against.
type benchSnapshot struct {
	Description string         `json:"description"`
	Command     string         `json:"command"`
	Config      bench.Config   `json:"config"`
	Tables      []*bench.Table `json:"tables"`
}

func writeBenchSnapshot(path string, cfg bench.Config, ids []string, tables []*bench.Table) error {
	cfg.Progress = nil // not serializable, and meaningless in a snapshot
	snap := benchSnapshot{
		Description: "divabench snapshot: " + strings.Join(ids, ","),
		Command:     "go run ./cmd/divabench -exp " + strings.Join(ids, ",") + fmt.Sprintf(" -scale %g -bench-out %s", cfg.Scale, filepath.Base(path)),
		Config:      cfg,
		Tables:      tables,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// appendHistory appends one synthetic record per benchmarked table to the
// run-history ledger: the experiment ID as the Bench fingerprint, the
// aggregate phase_seconds breakdown as the metrics. This puts the bench
// trajectory on the same ledger the per-run engine deposits use, so
// `divahist` compares snapshot-to-snapshot trends with the same noise floor
// as run-to-run ones. The engine's own per-run deposits during the bench are
// independent (they only happen when the engine sees a history dir, which
// the harness does not set per run).
func appendHistory(dir string, cfg bench.Config, tables []*bench.Table) error {
	l, err := history.Shared(dir)
	if err != nil {
		return err
	}
	for _, tbl := range tables {
		if len(tbl.PhaseSeconds) == 0 {
			continue
		}
		m := &trace.RunMetrics{Accuracy: -1}
		for _, ph := range trace.Phases() {
			sec, ok := tbl.PhaseSeconds[string(ph)]
			if !ok {
				continue
			}
			d := time.Duration(sec * float64(time.Second))
			m.Phases = append(m.Phases, trace.PhaseTiming{Phase: ph, Duration: d})
			m.Total += d
		}
		rec := &history.Record{
			Outcome: "ok",
			Config: history.Config{
				Bench:       tbl.ID,
				K:           cfg.K,
				Constraints: cfg.NumConstraints,
				Baseline:    cfg.Baseline,
			},
			Metrics: m,
		}
		if err := l.Append(rec); err != nil {
			return err
		}
	}
	return nil
}

func writeCSVFile(dir string, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	t.CSV(f)
	return f.Close()
}

func printTable(w io.Writer, t *bench.Table, csv bool) {
	if csv {
		fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
		t.CSV(w)
		fmt.Fprintln(w)
		return
	}
	t.Print(w)
}
