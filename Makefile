# Build and verification entry points. `make ci` is the gate every change
# must pass: formatting, vet, build, the full test suite, and the race
# detector over the concurrent paths (portfolio coloring, cancellation).

GO ?= go

# Benchmark snapshots for bench-compare (override on the command line).
BENCH_OLD ?= /tmp/bench_old.txt
BENCH_NEW ?= /tmp/bench_new.txt

.PHONY: all build fmt-check vet test race bench bench-color bench-compare ci

all: ci

build:
	$(GO) build ./...

# fmt-check fails, listing the offenders, when any tracked Go file is not
# gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench emits benchstat-compatible output including the per-phase
# "<phase>-ns/op" columns; pipe two runs into benchstat to diff phases.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# bench-color runs the allocation-sensitive coloring benchmarks (the
# BenchmarkColor family at the root plus the search package's coloring
# benchmarks) with enough repetitions for benchstat.
bench-color:
	$(GO) test -bench 'BenchmarkColorPhase' -count 5 -run '^$$' .
	$(GO) test -bench 'BenchmarkColoring' -count 5 -run '^$$' ./internal/search/

# bench-compare diffs two benchmark snapshots with benchstat:
#
#	make bench-color > old.txt   # on the baseline commit
#	make bench-color > new.txt   # on the candidate
#	make bench-compare BENCH_OLD=old.txt BENCH_NEW=new.txt
#
# benchstat (golang.org/x/perf/cmd/benchstat) must already be on PATH; the
# target fails with instructions rather than installing anything.
bench-compare:
	@command -v benchstat >/dev/null 2>&1 || { \
		echo "benchstat not found; install golang.org/x/perf/cmd/benchstat"; exit 1; }
	benchstat $(BENCH_OLD) $(BENCH_NEW)

ci: fmt-check vet build test race
