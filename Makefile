# Build and verification entry points. `make ci` is the gate every change
# must pass: vet, build, the full test suite, and the race detector over
# the concurrent paths (portfolio coloring, cancellation).

GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench emits benchstat-compatible output including the per-phase
# "<phase>-ns/op" columns; pipe two runs into benchstat to diff phases.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

ci: vet build test race
