# Build and verification entry points. `make ci` is the gate every change
# must pass: formatting, vet, build, the full test suite, and the race
# detector over the concurrent paths (portfolio coloring, cancellation).

GO ?= go

# Benchmark snapshots for bench-compare (override on the command line).
BENCH_OLD ?= /tmp/bench_old.txt
BENCH_NEW ?= /tmp/bench_new.txt

.PHONY: all build fmt-check vet test race bench bench-color bench-compare bench-baseline baseline-smoke shard-smoke obs-smoke live-smoke profile-smoke history-smoke nogood-smoke verify fuzz-smoke ci

# Minimum statement coverage for the verification subsystem itself — the
# checker that everything else leans on must stay tested.
VERIFY_COVER_FLOOR ?= 70

# Wall-clock budget for each fuzz target in fuzz-smoke.
FUZZTIME ?= 30s

all: ci

build:
	$(GO) build ./...

# fmt-check fails, listing the offenders, when any tracked Go file is not
# gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench emits benchstat-compatible output including the per-phase
# "<phase>-ns/op" columns; pipe two runs into benchstat to diff phases.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# bench-color runs the allocation-sensitive coloring benchmarks (the
# BenchmarkColor family at the root plus the search package's coloring
# benchmarks) with enough repetitions for benchstat.
bench-color:
	$(GO) test -bench 'BenchmarkColorPhase' -count 5 -run '^$$' .
	$(GO) test -bench 'BenchmarkColoring' -count 5 -run '^$$' ./internal/search/

# bench-compare diffs two benchmark snapshots with benchstat:
#
#	make bench-color > old.txt   # on the baseline commit
#	make bench-color > new.txt   # on the candidate
#	make bench-compare BENCH_OLD=old.txt BENCH_NEW=new.txt
#
# benchstat (golang.org/x/perf/cmd/benchstat) must already be on PATH; the
# target fails with instructions rather than installing anything.
bench-compare:
	@command -v benchstat >/dev/null 2>&1 || { \
		echo "benchstat not found; install golang.org/x/perf/cmd/benchstat"; exit 1; }
	benchstat $(BENCH_OLD) $(BENCH_NEW)

# bench-baseline regenerates BENCH_baseline.json: the baseline-partitioner
# comparison (parallel/sequential Mondrian, indexed/sampled k-member) at
# scale 0.5 on the census profile, every output gated through the invariant
# checker. Commit the refreshed snapshot when baseline-phase performance
# changes.
bench-baseline:
	$(GO) run ./cmd/divabench -exp baseline -scale 0.5 -bench-out BENCH_baseline.json

# baseline-smoke runs cmd/diva end to end at scale 0.05 under -verify with
# both the sequential and the parallel default partitioner settings, and
# checks the two outputs are byte-identical (the parallel Mondrian
# determinism contract at the CLI level).
baseline-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/diva ./cmd/diva; \
	$(GO) build -o $$tmp/datagen ./cmd/datagen; \
	$$tmp/datagen -profile census -rows 15000 -seed 7 >$$tmp/census.csv; \
	$$tmp/diva -in $$tmp/census.csv -k 10 -seed 7 -parallelism 1 -verify \
		>$$tmp/seq.csv || { echo "baseline-smoke: sequential run failed"; exit 1; }; \
	$$tmp/diva -in $$tmp/census.csv -k 10 -seed 7 -verify \
		>$$tmp/par.csv || { echo "baseline-smoke: parallel run failed"; exit 1; }; \
	cmp -s $$tmp/seq.csv $$tmp/par.csv || { \
		echo "baseline-smoke: parallel output differs from sequential"; exit 1; }; \
	[ -s $$tmp/seq.csv ] || { echo "baseline-smoke: empty output"; exit 1; }; \
	echo "baseline-smoke: ok (sequential and parallel outputs identical, -verify clean)"

# shard-smoke runs the shard-and-merge engine end to end at the CLI level:
# a census sample with a Σ that decomposes into three components
# (testdata/census-shard.sigma), solved monolithically and with -shards 4,
# all under -verify. The two sharded runs must be byte-identical (the shard
# plan's determinism contract); the monolithic run shares the -verify
# verdict but may publish a different — equally valid — relation.
shard-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/diva ./cmd/diva; \
	$(GO) build -o $$tmp/datagen ./cmd/datagen; \
	$$tmp/datagen -profile census -rows 15000 -seed 7 >$$tmp/census.csv; \
	$$tmp/diva -in $$tmp/census.csv -constraints testdata/census-shard.sigma \
		-k 10 -seed 7 -verify >$$tmp/mono.csv \
		|| { echo "shard-smoke: monolithic run failed"; exit 1; }; \
	$$tmp/diva -in $$tmp/census.csv -constraints testdata/census-shard.sigma \
		-k 10 -seed 7 -shards 4 -verify >$$tmp/shard1.csv \
		|| { echo "shard-smoke: sharded run failed"; exit 1; }; \
	$$tmp/diva -in $$tmp/census.csv -constraints testdata/census-shard.sigma \
		-k 10 -seed 7 -shards 4 -verify >$$tmp/shard2.csv \
		|| { echo "shard-smoke: sharded rerun failed"; exit 1; }; \
	cmp -s $$tmp/shard1.csv $$tmp/shard2.csv || { \
		echo "shard-smoke: sharded output not deterministic"; exit 1; }; \
	[ -s $$tmp/shard1.csv ] || { echo "shard-smoke: empty output"; exit 1; }; \
	echo "shard-smoke: ok (sharded runs byte-identical, monolithic and sharded -verify clean)"

# obs-smoke exercises the ops layer end to end: it runs cmd/diva with
# -listen on an ephemeral port against the paper's example (testdata/), keeps
# the process alive with -hold, scrapes /metrics and /debug/diva/runs, and
# asserts the Prometheus exposition carries the run histograms and the runs
# endpoint a completed run.
obs-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/diva ./cmd/diva; \
	$$tmp/diva -in testdata/patients.csv -constraints testdata/patients.sigma \
		-k 2 -seed 42 -listen 127.0.0.1:0 -hold 30s \
		>$$tmp/out.csv 2>$$tmp/err.log & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	addr=""; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's#.*listening on http://##p' $$tmp/err.log | head -1); \
		[ -n "$$addr" ] && break; sleep 0.1; \
	done; \
	if [ -z "$$addr" ]; then \
		echo "obs-smoke: ops server never announced an address"; \
		cat $$tmp/err.log; exit 1; fi; \
	ok=""; \
	for i in $$(seq 1 100); do \
		curl -sf "http://$$addr/metrics" >$$tmp/metrics.txt || true; \
		if grep -q '^diva_runs_total{outcome="ok"} [1-9]' $$tmp/metrics.txt; then \
			ok=1; break; fi; sleep 0.1; \
	done; \
	if [ -z "$$ok" ]; then \
		echo "obs-smoke: /metrics never showed a completed run"; \
		cat $$tmp/metrics.txt; exit 1; fi; \
	grep -q '^diva_phase_duration_seconds_bucket{phase="color"' $$tmp/metrics.txt || { \
		echo "obs-smoke: /metrics missing phase histogram"; exit 1; }; \
	grep -q '^diva_search_heartbeats_total [1-9]' $$tmp/metrics.txt || { \
		echo "obs-smoke: /metrics missing search heartbeats"; exit 1; }; \
	curl -sf "http://$$addr/debug/diva/runs" >$$tmp/runs.json; \
	grep -q '"state": "ok"' $$tmp/runs.json || { \
		echo "obs-smoke: /debug/diva/runs has no completed run:"; \
		cat $$tmp/runs.json; exit 1; }; \
	[ -s $$tmp/out.csv ] || { echo "obs-smoke: empty anonymized output"; exit 1; }; \
	echo "obs-smoke: ok (scraped http://$$addr)"

# live-smoke exercises the live-telemetry stack end to end against a held
# run: the SSE endpoint must replay at least one progress event and the
# terminal run-end event to a follower that connects after the run finished,
# the flight-recorder dump must validate with tracecheck -flight, divatop
# -once must render the finished run, and the canonical "diva run" log
# record's experiment key must round-trip into the divahist ledger.
live-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/diva ./cmd/diva; \
	$(GO) build -o $$tmp/divatop ./cmd/divatop; \
	$(GO) build -o $$tmp/tracecheck ./cmd/tracecheck; \
	$(GO) build -o $$tmp/divahist ./cmd/divahist; \
	$$tmp/diva -in testdata/patients.csv -constraints testdata/patients.sigma \
		-k 2 -seed 42 -listen 127.0.0.1:0 -hold 30s -log-format json \
		-history-dir $$tmp/hist >$$tmp/out.csv 2>$$tmp/err.log & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	addr=""; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's/.*"msg":"ops server listening","addr":"\([^"]*\)".*/\1/p' $$tmp/err.log | head -1); \
		[ -n "$$addr" ] && break; sleep 0.1; \
	done; \
	if [ -z "$$addr" ]; then \
		echo "live-smoke: ops server never announced an address"; \
		cat $$tmp/err.log; exit 1; fi; \
	curl -sN --max-time 3 "http://$$addr/debug/diva/events?run=all" >$$tmp/sse.txt || true; \
	grep -q '^event: progress' $$tmp/sse.txt || { \
		echo "live-smoke: SSE stream carried no progress event:"; \
		cat $$tmp/sse.txt; exit 1; }; \
	grep -q '^event: run-end' $$tmp/sse.txt || { \
		echo "live-smoke: SSE stream carried no terminal run-end event:"; \
		cat $$tmp/sse.txt; exit 1; }; \
	curl -sf "http://$$addr/debug/diva/runs/1/events" >$$tmp/flight.json || { \
		echo "live-smoke: flight-recorder dump unavailable"; exit 1; }; \
	$$tmp/tracecheck -flight $$tmp/flight.json || { \
		echo "live-smoke: flight dump failed validation"; exit 1; }; \
	$$tmp/divatop -addr "$$addr" -once >$$tmp/top.txt || { \
		echo "live-smoke: divatop -once failed"; exit 1; }; \
	grep -q 'ok' $$tmp/top.txt || { \
		echo "live-smoke: divatop never rendered the finished run:"; \
		cat $$tmp/top.txt; exit 1; }; \
	key=$$(sed -n 's/.*"msg":"diva run".*"key":"\([^"]*\)".*/\1/p' $$tmp/err.log | head -1); \
	if [ -z "$$key" ]; then \
		echo "live-smoke: no canonical run record in the structured log:"; \
		cat $$tmp/err.log; exit 1; fi; \
	$$tmp/divahist -dir $$tmp/hist list >$$tmp/list.txt || { \
		echo "live-smoke: divahist list failed"; exit 1; }; \
	grep -q "$$key" $$tmp/list.txt || { \
		echo "live-smoke: canonical key $$key missing from the ledger:"; \
		cat $$tmp/list.txt; exit 1; }; \
	echo "live-smoke: ok (streamed http://$$addr, key $$key)"

# profile-smoke exercises the search profiler end to end. The success path
# runs cmd/diva with -profile against the paper's example and validates the
# artifact as Chrome trace-event JSON with cmd/tracecheck; the failure path
# runs the deliberately pruned instance (testdata/patients-pruned.sigma) with
# -explain and asserts the explainer names the upper-bound pruning verdict
# and a culprit constraint rather than claiming true infeasibility.
profile-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/diva ./cmd/diva; \
	$(GO) build -o $$tmp/tracecheck ./cmd/tracecheck; \
	$$tmp/diva -in testdata/patients.csv -constraints testdata/patients.sigma \
		-k 2 -seed 42 -profile $$tmp/prof.json >$$tmp/out.csv 2>$$tmp/err.log || { \
		echo "profile-smoke: profiled run failed"; cat $$tmp/err.log; exit 1; }; \
	$$tmp/tracecheck $$tmp/prof.json || { \
		echo "profile-smoke: -profile artifact is not valid trace-event JSON"; exit 1; }; \
	[ -s $$tmp/out.csv ] || { echo "profile-smoke: empty anonymized output"; exit 1; }; \
	if $$tmp/diva -in testdata/patients.csv -constraints testdata/patients-pruned.sigma \
		-strategy MinChoice -k 2 -seed 42 -explain \
		>/dev/null 2>$$tmp/explain.log; then \
		echo "profile-smoke: pruned instance unexpectedly succeeded"; exit 1; fi; \
	grep -q 'UPPER-BOUND PRUNING' $$tmp/explain.log || { \
		echo "profile-smoke: explainer missing upper-bound pruning verdict:"; \
		cat $$tmp/explain.log; exit 1; }; \
	grep -q 'NOT a proof' $$tmp/explain.log || { \
		echo "profile-smoke: explainer failed to caveat the pruning verdict:"; \
		cat $$tmp/explain.log; exit 1; }; \
	grep -Eq 'dominant_blocker=σ[0-9]' $$tmp/explain.log || { \
		echo "profile-smoke: explainer named no culprit constraint:"; \
		cat $$tmp/explain.log; exit 1; }; \
	echo "profile-smoke: ok (trace artifact valid, explainer named a culprit)"

# history-smoke exercises the run-history ledger and the perf-regression
# gate end to end: two ledgered cmd/diva runs on the paper's example (the
# second through the chunked streaming loader, which must produce the same
# dataset fingerprint), `divahist diff` confirming the pair compares as
# noise, `divahist gate` passing on the honest ledger, and — after awk
# inflates the last record's coloring phase to 9s, far past the noise
# floor — the gate exiting non-zero.
history-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/diva ./cmd/diva; \
	$(GO) build -o $$tmp/divahist ./cmd/divahist; \
	$$tmp/diva -in testdata/patients.csv -constraints testdata/patients.sigma \
		-k 2 -seed 42 -verify -history-dir $$tmp/hist >$$tmp/a.csv || { \
		echo "history-smoke: first ledgered run failed"; exit 1; }; \
	$$tmp/diva -in testdata/patients.csv -constraints testdata/patients.sigma \
		-k 2 -seed 42 -verify -chunk 4 -history-dir $$tmp/hist >$$tmp/b.csv || { \
		echo "history-smoke: second (chunked) ledgered run failed"; exit 1; }; \
	[ "$$(wc -l < $$tmp/hist/ledger.jsonl)" = 2 ] || { \
		echo "history-smoke: expected 2 ledger records, got:"; \
		cat $$tmp/hist/ledger.jsonl; exit 1; }; \
	$$tmp/divahist -dir $$tmp/hist diff prev latest >$$tmp/diff.txt 2>$$tmp/diff.err || { \
		echo "history-smoke: divahist diff failed"; cat $$tmp/diff.err; exit 1; }; \
	grep -q 'confirmed regressions: 0' $$tmp/diff.txt || { \
		echo "history-smoke: identical runs compared as a regression:"; \
		cat $$tmp/diff.txt; exit 1; }; \
	grep -q 'different experiment keys' $$tmp/diff.err && { \
		echo "history-smoke: chunked loading changed the dataset fingerprint"; \
		cat $$tmp/diff.err; exit 1; } || true; \
	$$tmp/divahist -dir $$tmp/hist gate >$$tmp/gate.txt || { \
		echo "history-smoke: gate failed on an honest ledger:"; \
		cat $$tmp/gate.txt; exit 1; }; \
	mkdir $$tmp/hist-bad; \
	awk -v n="$$(wc -l < $$tmp/hist/ledger.jsonl)" \
		'NR==n{gsub(/"phase":"color","duration_ns":[0-9]+/, \
			"\"phase\":\"color\",\"duration_ns\":9000000000")}1' \
		$$tmp/hist/ledger.jsonl >$$tmp/hist-bad/ledger.jsonl; \
	if $$tmp/divahist -dir $$tmp/hist-bad gate >$$tmp/gate-bad.txt; then \
		echo "history-smoke: gate missed a 9s coloring regression:"; \
		cat $$tmp/gate-bad.txt; exit 1; fi; \
	grep -q 'regression' $$tmp/gate-bad.txt || { \
		echo "history-smoke: failing gate did not name the regression:"; \
		cat $$tmp/gate-bad.txt; exit 1; }; \
	echo "history-smoke: ok (2 ledgered runs, diff noise-clean, gate trips on inflated color phase)"

# nogood-smoke exercises conflict-driven nogood learning at the CLI level: a
# dense-conflict census fixture (testdata/census-dense.sigma — four
# overlapping cluster-forcing constraints at the densest satisfiable k) run
# twice with -nogoods -verify -explain. The explainer must cite the learned
# nogoods, -verify must accept the published relation, and the two
# invocations must be byte-identical on stdout AND on stderr modulo wall
# times — learning keyed on assignment fingerprints may not perturb replay
# determinism.
nogood-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/diva ./cmd/diva; \
	$(GO) build -o $$tmp/datagen ./cmd/datagen; \
	$$tmp/datagen -profile census -rows 200 -seed 7 >$$tmp/census.csv; \
	$$tmp/diva -in $$tmp/census.csv -constraints testdata/census-dense.sigma \
		-k 39 -seed 7 -nogoods -verify -explain \
		>$$tmp/run1.csv 2>$$tmp/run1.log \
		|| { echo "nogood-smoke: learning run failed"; cat $$tmp/run1.log; exit 1; }; \
	$$tmp/diva -in $$tmp/census.csv -constraints testdata/census-dense.sigma \
		-k 39 -seed 7 -nogoods -verify -explain \
		>$$tmp/run2.csv 2>$$tmp/run2.log \
		|| { echo "nogood-smoke: learning rerun failed"; cat $$tmp/run2.log; exit 1; }; \
	grep -q 'learned nogoods' $$tmp/run1.log || { \
		echo "nogood-smoke: explain output does not cite learned nogoods:"; \
		cat $$tmp/run1.log; exit 1; }; \
	grep -Eq 'learning: [1-9][0-9]* learned nogoods' $$tmp/run1.log || { \
		echo "nogood-smoke: learner recorded zero nogoods on the dense fixture:"; \
		cat $$tmp/run1.log; exit 1; }; \
	grep -q 'verify ok' $$tmp/run1.log || { \
		echo "nogood-smoke: -verify did not accept the learning run's output:"; \
		cat $$tmp/run1.log; exit 1; }; \
	cmp -s $$tmp/run1.csv $$tmp/run2.csv || { \
		echo "nogood-smoke: learning runs published different relations"; exit 1; }; \
	sed 's/ wall=[^ ]*//' $$tmp/run1.log >$$tmp/run1.norm; \
	sed 's/ wall=[^ ]*//' $$tmp/run2.log >$$tmp/run2.norm; \
	cmp -s $$tmp/run1.norm $$tmp/run2.norm || { \
		echo "nogood-smoke: learning runs diverged on stderr (explain/stats)"; \
		diff $$tmp/run1.log $$tmp/run2.log || true; exit 1; }; \
	[ -s $$tmp/run1.csv ] || { echo "nogood-smoke: empty output"; exit 1; }; \
	echo "nogood-smoke: ok (nogoods cited in explain, -verify clean, both invocations byte-identical)"

# verify runs the differential-verification subsystem as its own gate: the
# invariant checker and brute-force oracle unit tests, the differential and
# metamorphic harnesses (several hundred micro-instances against the oracle),
# a fuzz smoke over the end-to-end CSV→anonymize path, all under -race, with
# go vet and a coverage floor on internal/verify. Seed with
# DIVA_TEST_SEED=<n> to reproduce a reported failure.
verify:
	$(GO) vet ./internal/verify/
	$(GO) test -race -coverprofile=/tmp/verify_cover.out ./internal/verify/
	@pct=$$($(GO) tool cover -func=/tmp/verify_cover.out | \
		awk '/^total:/ {sub(/%/, "", $$NF); print $$NF}'); \
	echo "internal/verify coverage: $$pct% (floor $(VERIFY_COVER_FLOOR)%)"; \
	awk "BEGIN{exit !($$pct >= $(VERIFY_COVER_FLOOR))}" || { \
		echo "verify: coverage $$pct% below floor $(VERIFY_COVER_FLOOR)%"; exit 1; }
	$(MAKE) fuzz-smoke

# fuzz-smoke runs each fuzz target for a bounded wall-clock slice, starting
# from the checked-in corpora under internal/verify/testdata/fuzz/.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzAnonymizeEndToEnd' -fuzztime $(FUZZTIME) ./internal/verify/
	$(GO) test -run '^$$' -fuzz 'FuzzBruteForceOracle' -fuzztime $(FUZZTIME) ./internal/verify/

ci: fmt-check vet build test race verify obs-smoke live-smoke profile-smoke baseline-smoke shard-smoke history-smoke nogood-smoke
