package diva_test

// Compatibility tests for the deprecated context-free entry points. These are
// the only tests that may call diva.Anonymize / diva.AnonymizeBaseline; all
// other callers use the ...Context variants.

import (
	"bytes"
	"context"
	"testing"

	"diva"
)

// TestDeprecatedAnonymizeCompat: the deprecated wrapper must keep producing
// exactly what AnonymizeContext(context.Background(), ...) produces.
func TestDeprecatedAnonymizeCompat(t *testing.T) {
	opts := diva.Options{K: 2, Strategy: diva.MaxFanOut, Seed: 1}
	oldRes, err := diva.Anonymize(loadPatients(t), paperConstraints(), opts)
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := diva.AnonymizeContext(context.Background(), loadPatients(t), paperConstraints(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var oldCSV, newCSV bytes.Buffer
	if err := diva.WriteCSV(&oldCSV, oldRes.Output); err != nil {
		t.Fatal(err)
	}
	if err := diva.WriteCSV(&newCSV, newRes.Output); err != nil {
		t.Fatal(err)
	}
	if oldCSV.String() != newCSV.String() {
		t.Fatal("deprecated Anonymize diverged from AnonymizeContext")
	}
}

// TestDeprecatedAnonymizeBaselineCompat: same for the baseline-only wrapper.
func TestDeprecatedAnonymizeBaselineCompat(t *testing.T) {
	opts := diva.Options{K: 3, Seed: 2}
	oldOut, err := diva.AnonymizeBaseline(loadPatients(t), diva.KMember, opts)
	if err != nil {
		t.Fatal(err)
	}
	newOut, err := diva.AnonymizeBaselineContext(context.Background(), loadPatients(t), diva.KMember, opts)
	if err != nil {
		t.Fatal(err)
	}
	var oldCSV, newCSV bytes.Buffer
	if err := diva.WriteCSV(&oldCSV, oldOut); err != nil {
		t.Fatal(err)
	}
	if err := diva.WriteCSV(&newCSV, newOut); err != nil {
		t.Fatal(err)
	}
	if oldCSV.String() != newCSV.String() {
		t.Fatal("deprecated AnonymizeBaseline diverged from AnonymizeBaselineContext")
	}
}
