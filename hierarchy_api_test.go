package diva_test

import (
	"context"
	"strings"
	"testing"

	"diva"
)

// TestPublicHierarchies drives the generalized rendering through the public
// API end to end.
func TestPublicHierarchies(t *testing.T) {
	rel := loadPatients(t)
	age, err := diva.NewIntervalHierarchy("AGE", 0, 99, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	prv, err := diva.ParseHierarchy("PRV", `
AB -> West
BC -> West
MB -> West
West -> *
`)
	if err != nil {
		t.Fatal(err)
	}
	hs := diva.Hierarchies{"AGE": age, "PRV": prv}
	sigma := paperConstraints()
	res, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{
		K: 2, Strategy: diva.MaxFanOut, Seed: 9, Hierarchies: hs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !diva.IsKAnonymous(res.Output, 2) {
		t.Fatal("generalized output not 2-anonymous")
	}
	ok, err := sigma.SatisfiedBy(res.Output)
	if err != nil || !ok {
		t.Fatalf("generalized output violates Σ (err=%v)", err)
	}
	// NCP under generalization must not exceed the plain suppression run's.
	plain, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 2, Strategy: diva.MaxFanOut, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if g, s := diva.NCP(res.Output, hs), diva.NCP(plain.Output, hs); g > s {
		t.Fatalf("generalized NCP %v above suppression NCP %v", g, s)
	}
}

func TestPublicParseHierarchyErrors(t *testing.T) {
	if _, err := diva.ParseHierarchy("X", "not a pair"); err == nil {
		t.Fatal("malformed hierarchy accepted")
	}
	if _, err := diva.NewIntervalHierarchy("X", 9, 1, 10, 2); err == nil {
		t.Fatal("inverted interval range accepted")
	}
}

func TestPublicNCPWithoutHierarchies(t *testing.T) {
	rel, err := diva.ReadAnnotatedCSV(strings.NewReader("A:qi,B:qi\nx,y\nu,v\n"))
	if err != nil {
		t.Fatal(err)
	}
	rel.Suppress(0, 0)
	if got, want := diva.NCP(rel, nil), 1-diva.Accuracy(rel); got != want {
		t.Fatalf("NCP = %v, want 1−Accuracy = %v", got, want)
	}
}
