package diva_test

// Tests for the pluggable Partitioner surface: NewBaseline construction,
// Options.Anonymizer injection, and the Parallelism determinism contract.

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"diva"
)

// countingPartitioner decorates another Partitioner, recording how often the
// engine called it — the README's decorator example, as a test.
type countingPartitioner struct {
	inner diva.Partitioner
	calls int
}

func (c *countingPartitioner) Name() string { return "counting(" + c.inner.Name() + ")" }

func (c *countingPartitioner) Partition(ctx context.Context, rel *diva.Relation, rows []int, k int) ([][]int, error) {
	c.calls++
	return c.inner.Partition(ctx, rel, rows, k)
}

func TestNewBaseline(t *testing.T) {
	for _, c := range []struct {
		b    diva.Baseline
		name string
	}{
		{diva.KMember, "k-member"},
		{diva.OKA, "OKA"},
		{diva.Mondrian, "Mondrian"},
		{diva.Baseline(""), "Mondrian"}, // zero value is the default
	} {
		p, err := diva.NewBaseline(c.b)
		if err != nil {
			t.Fatalf("NewBaseline(%q): %v", c.b, err)
		}
		if p.Name() != c.name {
			t.Fatalf("NewBaseline(%q).Name() = %q, want %q", c.b, p.Name(), c.name)
		}
	}
	var ub *diva.UnknownBaselineError
	if _, err := diva.NewBaseline("magic"); !errors.As(err, &ub) {
		t.Fatalf("NewBaseline(magic): want UnknownBaselineError, got %v", err)
	}
}

// TestOptionsAnonymizer injects a caller-supplied partitioner end to end and
// checks it both runs and overrides the Baseline enum entirely (an invalid
// enum value must not even be parsed when Anonymizer is set).
func TestOptionsAnonymizer(t *testing.T) {
	rel := loadPatients(t)
	inner, err := diva.NewBaseline(diva.Mondrian)
	if err != nil {
		t.Fatal(err)
	}
	stub := &countingPartitioner{inner: inner}
	res, err := diva.AnonymizeContext(context.Background(), rel, paperConstraints(), diva.Options{
		K:          2,
		Seed:       1,
		Baseline:   "magic", // ignored: Anonymizer wins
		Anonymizer: stub,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stub.calls == 0 {
		t.Fatal("injected Anonymizer was never called")
	}
	if !diva.IsKAnonymous(res.Output, 2) {
		t.Fatal("output not 2-anonymous under injected partitioner")
	}
	if err := diva.Verify(rel, res, paperConstraints(), 2); err != nil {
		t.Fatal(err)
	}
}

// TestOptionsAnonymizerBaselinePath: the injected partitioner also drives the
// baseline-only entry point, whatever Baseline enum is passed.
func TestOptionsAnonymizerBaselinePath(t *testing.T) {
	rel := loadPatients(t)
	inner, err := diva.NewBaseline(diva.KMember)
	if err != nil {
		t.Fatal(err)
	}
	stub := &countingPartitioner{inner: inner}
	out, err := diva.AnonymizeBaselineContext(context.Background(), rel, "magic", diva.Options{K: 3, Anonymizer: stub})
	if err != nil {
		t.Fatal(err)
	}
	if stub.calls == 0 {
		t.Fatal("injected Anonymizer was never called")
	}
	if !diva.IsKAnonymous(out, 3) {
		t.Fatal("output not 3-anonymous under injected partitioner")
	}
}

// TestParallelismDeterminism pins the tentpole determinism contract at the
// public level: any Options.Parallelism value yields byte-identical CSV
// output to the sequential run. (Run with -race in CI via `make ci`.)
func TestParallelismDeterminism(t *testing.T) {
	render := func(parallelism int) string {
		rel := censusRelation(t, 3000)
		res, err := diva.AnonymizeContext(context.Background(), rel, censusSigma(), diva.Options{
			K:           4,
			Seed:        9,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		var buf bytes.Buffer
		if err := diva.WriteCSV(&buf, res.Output); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	want := render(1)
	for _, p := range []int{0, 2, 4, 8} {
		if got := render(p); got != want {
			t.Fatalf("Parallelism=%d output differs from sequential", p)
		}
	}

	// Same contract on the paper's patients fixture (small enough that the
	// fan-out never triggers — the sequential code path must be identical).
	patients := func(parallelism int) string {
		res, err := diva.AnonymizeContext(context.Background(), loadPatients(t), paperConstraints(), diva.Options{
			K:           2,
			Seed:        1,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatalf("patients parallelism %d: %v", parallelism, err)
		}
		var buf bytes.Buffer
		if err := diva.WriteCSV(&buf, res.Output); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	wantP := patients(1)
	for _, p := range []int{0, 4} {
		if got := patients(p); got != wantP {
			t.Fatalf("patients Parallelism=%d output differs from sequential", p)
		}
	}
}
