//go:build !race

package diva_test

const raceEnabled = false
