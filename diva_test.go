package diva_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"diva"
)

const patientsCSV = `GEN:qi,ETH:qi,AGE:qi:numeric,PRV:qi,CTY:qi,DIAG:sensitive
Female,Caucasian,80,AB,Calgary,Hypertension
Female,Caucasian,32,AB,Calgary,Tuberculosis
Male,Caucasian,59,AB,Calgary,Osteoarthritis
Male,Caucasian,46,MB,Winnipeg,Migraine
Male,African,32,MB,Winnipeg,Hypertension
Male,African,43,BC,Vancouver,Seizure
Male,Caucasian,35,BC,Vancouver,Hypertension
Female,Asian,58,BC,Vancouver,Seizure
Female,Asian,63,MB,Winnipeg,Influenza
Female,Asian,71,BC,Vancouver,Migraine
`

func loadPatients(t testing.TB) *diva.Relation {
	t.Helper()
	rel, err := diva.ReadAnnotatedCSV(strings.NewReader(patientsCSV))
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func paperConstraints() diva.Constraints {
	return diva.Constraints{
		diva.NewConstraint("ETH", "Asian", 2, 5),
		diva.NewConstraint("ETH", "African", 1, 3),
		diva.NewConstraint("CTY", "Vancouver", 2, 4),
	}
}

func TestPublicAnonymize(t *testing.T) {
	rel := loadPatients(t)
	sigma := paperConstraints()
	res, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 2, Strategy: diva.MaxFanOut, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !diva.IsKAnonymous(res.Output, 2) {
		t.Fatal("output not 2-anonymous")
	}
	ok, err := sigma.SatisfiedBy(res.Output)
	if err != nil || !ok {
		t.Fatalf("constraints unsatisfied (err=%v)", err)
	}
	if err := diva.Verify(rel, res, sigma, 2); err != nil {
		t.Fatal(err)
	}
	if acc := diva.Accuracy(res.Output); acc <= 0 || acc > 1 {
		t.Fatalf("accuracy = %v", acc)
	}
	if diva.Discernibility(res.Output, 2) < 2*res.Output.Len() {
		t.Fatal("discernibility below the k-anonymity floor")
	}
}

func TestPublicAnonymizeDeterministicSeed(t *testing.T) {
	sigma := paperConstraints()
	var outs [2]*bytes.Buffer
	for i := range outs {
		rel := loadPatients(t)
		res, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 2, Strategy: diva.Basic, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = &bytes.Buffer{}
		if err := diva.WriteCSV(outs[i], res.Output); err != nil {
			t.Fatal(err)
		}
	}
	if outs[0].String() != outs[1].String() {
		t.Fatal("equal seeds produced different outputs")
	}
}

func TestPublicUnsatisfiable(t *testing.T) {
	rel := loadPatients(t)
	sigma := diva.Constraints{diva.NewConstraint("ETH", "Asian", 9, 12)}
	_, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 2, Seed: 1})
	if !errors.Is(err, diva.ErrNoDiverseClustering) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublicBaselines(t *testing.T) {
	rel := loadPatients(t)
	for _, name := range []diva.Baseline{diva.KMember, diva.OKA, diva.Mondrian} {
		out, err := diva.AnonymizeBaselineContext(context.Background(), rel, name, diva.Options{K: 3, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !diva.IsKAnonymous(out, 3) {
			t.Fatalf("%s output not 3-anonymous", name)
		}
	}
	if _, err := diva.AnonymizeBaselineContext(context.Background(), rel, "magic", diva.Options{K: 3}); err == nil {
		t.Fatal("unknown baseline accepted")
	}
	var ub *diva.UnknownBaselineError
	if _, err := diva.AnonymizeContext(context.Background(), rel, nil, diva.Options{K: 3, Baseline: "magic"}); !errors.As(err, &ub) {
		t.Fatalf("want UnknownBaselineError, got %v", err)
	}
}

func TestPublicConstraintParsing(t *testing.T) {
	c, err := diva.ParseConstraint("ETH[Asian], 2, 5")
	if err != nil || c.String() != "ETH[Asian], 2, 5" {
		t.Fatalf("ParseConstraint: %v, %v", c, err)
	}
	set, err := diva.ParseConstraints(strings.NewReader("# σ1\nETH[Asian], 2, 5\nCTY[Vancouver], 2, 4\n"))
	if err != nil || len(set) != 2 {
		t.Fatalf("ParseConstraints: %v, %v", set, err)
	}
	multi := diva.NewMultiConstraint([]string{"ETH", "CTY"}, []string{"Asian", "Vancouver"}, 1, 2)
	if len(multi.Attrs) != 2 {
		t.Fatal("NewMultiConstraint lost attributes")
	}
}

func TestPublicConflictRate(t *testing.T) {
	rel := loadPatients(t)
	cf, err := diva.ConflictRate(rel, paperConstraints())
	if err != nil {
		t.Fatal(err)
	}
	if cf <= 0 || cf > 1 {
		t.Fatalf("cf = %v", cf)
	}
	disjoint := diva.Constraints{
		diva.NewConstraint("ETH", "Asian", 2, 5),
		diva.NewConstraint("ETH", "African", 1, 3),
	}
	cf, err = diva.ConflictRate(rel, disjoint)
	if err != nil || cf != 0 {
		t.Fatalf("disjoint cf = %v, %v", cf, err)
	}
}

func TestPublicSchemaBuilding(t *testing.T) {
	schema := diva.MustSchema(
		diva.Attribute{Name: "A", Role: diva.QI, Kind: diva.Categorical},
		diva.Attribute{Name: "N", Role: diva.Sensitive, Kind: diva.Numeric},
		diva.Attribute{Name: "I", Role: diva.Identifier},
	)
	rel := diva.NewRelation(schema)
	rel.MustAppendValues("x", "1", "id0")
	if rel.Len() != 1 {
		t.Fatal("append failed")
	}
	if _, err := diva.NewSchema(diva.Attribute{Name: "A"}, diva.Attribute{Name: "A"}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestPublicLDiversity(t *testing.T) {
	rel := loadPatients(t)
	res, err := diva.AnonymizeContext(context.Background(), rel, nil, diva.Options{K: 2, LDiversity: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !diva.IsLDiverse(res.Output, 2) {
		t.Fatal("output not 2-diverse")
	}
	if !diva.IsKAnonymous(res.Output, 2) {
		t.Fatal("output not 2-anonymous")
	}
	// OKA cannot enforce l-diversity and must be rejected up front with the
	// typed unsupported-combination error, not an unknown-name error.
	var ub *diva.UnsupportedBaselineError
	if _, err := diva.AnonymizeContext(context.Background(), rel, nil, diva.Options{K: 2, LDiversity: 2, Baseline: "oka", Seed: 4}); !errors.As(err, &ub) {
		t.Fatalf("OKA with l-diversity: want UnsupportedBaselineError, got %v", err)
	}
}

func TestPublicParallel(t *testing.T) {
	rel := loadPatients(t)
	sigma := paperConstraints()
	res, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 2, Parallel: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := diva.Verify(rel, res, sigma, 2); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSuppressionLoss(t *testing.T) {
	rel := loadPatients(t)
	if diva.SuppressionLoss(rel) != 0 {
		t.Fatal("fresh relation has loss")
	}
	res, err := diva.AnonymizeContext(context.Background(), rel, paperConstraints(), diva.Options{K: 2, Seed: 3, Strategy: diva.MinChoice})
	if err != nil {
		t.Fatal(err)
	}
	if diva.SuppressionLoss(res.Output) == 0 {
		t.Fatal("anonymization suppressed nothing on heterogeneous data")
	}
}
