// Benchmarks regenerating the paper's evaluation, one per table and figure.
//
// Each benchmark measures a representative configuration of its experiment
// at a laptop scale (the full sweeps, and the complete series the paper
// plots, are produced by cmd/divabench — see EXPERIMENTS.md). Sub-benchmarks
// split the series the figure compares, so
//
//	go test -bench=Fig5a -benchmem
//
// reports one line per algorithm exactly like the figure's legend.
package diva_test

import (
	"context"
	"fmt"
	"math/rand/v2"
	"testing"

	"diva"
	"diva/internal/anon"
	"diva/internal/cluster"
	"diva/internal/constraint"
	"diva/internal/core"
	"diva/internal/dataset"
	"diva/internal/metrics"
	"diva/internal/search"
)

// benchRows is the default relation size for benchmark runs.
const benchRows = 2000

func benchRelation(b *testing.B, gen *dataset.Generator, rows int) *diva.Relation {
	b.Helper()
	return gen.Generate(rows, 42)
}

func benchSigma(b *testing.B, rel *diva.Relation, n, k int) constraint.Set {
	b.Helper()
	sigma, err := constraint.Proportional(rel, constraint.GenOptions{
		Count: n,
		K:     k,
		Rng:   rand.New(rand.NewPCG(3, 14)),
	})
	if err != nil {
		b.Fatal(err)
	}
	return sigma
}

func runDIVABench(b *testing.B, rel *diva.Relation, sigma constraint.Set, k int, strat search.Strategy) {
	b.Helper()
	b.ReportAllocs()
	phaseNanos := make(map[diva.Phase]float64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewPCG(9, uint64(i)))
		res, err := core.Anonymize(context.Background(), rel, sigma, core.Options{
			K:          k,
			Strategy:   strat,
			Rng:        rng,
			Anonymizer: &anon.KMember{Rng: rng, SampleCap: 256},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range res.Metrics.Phases {
			phaseNanos[pt.Phase] += float64(pt.Duration)
		}
		if i == 0 {
			b.ReportMetric(metrics.Accuracy(res.Output), "accuracy")
		}
	}
	b.StopTimer()
	// Per-phase breakdown in benchstat-comparable units: each phase becomes
	// its own "<phase>-ns/op" column, so two runs diff phase by phase.
	for _, ph := range []diva.Phase{
		diva.PhaseBind, diva.PhaseBuildGraph, diva.PhaseColor, diva.PhaseSuppress,
		diva.PhaseBaseline, diva.PhaseIntegrate, diva.PhaseVerify,
	} {
		if ns, ok := phaseNanos[ph]; ok {
			b.ReportMetric(ns/float64(b.N), string(ph)+"-ns/op")
		}
	}
}

func runBaselineBench(b *testing.B, rel *diva.Relation, p anon.Partitioner, k int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := core.RunBaseline(context.Background(), rel, p, k, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(metrics.Accuracy(out), "accuracy")
		}
	}
}

// BenchmarkColorPhase isolates the coloring search — graph build plus
// Color — from the rest of the pipeline, so B/op and allocs/op reflect the
// backtracking loop alone (the end-to-end benchmarks fold the suppression
// and baseline phases into their allocation counts).
func BenchmarkColorPhase(b *testing.B) {
	rel := benchRelation(b, dataset.Census(), benchRows)
	sigma := benchSigma(b, rel, 8, 10)
	bounds, err := sigma.Bind(rel)
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []search.Strategy{search.Basic, search.MinChoice, search.MaxFanOut} {
		b.Run(strat.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graph := search.BuildGraph(rel, bounds, cluster.Options{K: 10})
				_, _, found := graph.Color(search.Options{
					Strategy: strat,
					Rng:      rand.New(rand.NewPCG(9, 7)),
				})
				if !found {
					b.Fatal("no coloring")
				}
			}
		})
	}
}

// BenchmarkTable4_DatasetProfiles measures generating each evaluation
// dataset (scaled) and computing its Table 4 characteristics.
func BenchmarkTable4_DatasetProfiles(b *testing.B) {
	for name, p := range dataset.Profiles() {
		rows := p.DefaultRows / 10
		if rows < 1000 {
			rows = p.DefaultRows
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rel := p.Generator.Generate(rows, 42)
				_ = rel.DistinctCount(rel.Schema().QIIndexes())
			}
		})
	}
}

// BenchmarkTable5_DefaultConfiguration measures one DIVA run at the
// parameter defaults of Table 5 (scaled).
func BenchmarkTable5_DefaultConfiguration(b *testing.B) {
	rel := benchRelation(b, dataset.Census(), benchRows)
	sigma := benchSigma(b, rel, 8, 10)
	runDIVABench(b, rel, sigma, 10, search.MaxFanOut)
}

// BenchmarkFig4a_RuntimeVsNumConstraints: runtime per strategy as |Σ|
// varies (Census).
func BenchmarkFig4a_RuntimeVsNumConstraints(b *testing.B) {
	rel := benchRelation(b, dataset.Census(), benchRows)
	for _, ns := range []int{4, 12, 20} {
		sigma := benchSigma(b, rel, ns, 10)
		for _, strat := range []search.Strategy{search.MinChoice, search.MaxFanOut, search.Basic} {
			b.Run(fmt.Sprintf("sigma=%d/%s", ns, strat), func(b *testing.B) {
				runDIVABench(b, rel, sigma, 10, strat)
			})
		}
	}
}

// BenchmarkFig4b_AccuracyVsNumConstraints: the same sweep, reported via the
// accuracy metric (the benchmark's accuracy column is the figure's y-axis).
func BenchmarkFig4b_AccuracyVsNumConstraints(b *testing.B) {
	rel := benchRelation(b, dataset.Census(), benchRows)
	for _, ns := range []int{4, 12, 20} {
		sigma := benchSigma(b, rel, ns, 10)
		b.Run(fmt.Sprintf("sigma=%d", ns), func(b *testing.B) {
			runDIVABench(b, rel, sigma, 10, search.MaxFanOut)
		})
	}
}

// BenchmarkFig4c_AccuracyVsConflict: DIVA under increasing constraint
// conflict on the coupled Pantheon variant.
func BenchmarkFig4c_AccuracyVsConflict(b *testing.B) {
	rel := dataset.PantheonConflict(1).Generate(benchRows, 42)
	occIdx, _ := rel.Schema().Index("OCCUPATION")
	type vf struct {
		value string
		n     int
	}
	var occs []vf
	for code, n := range rel.ValueFrequencies(occIdx) {
		if n >= 40 {
			occs = append(occs, vf{rel.Dict(occIdx).Value(code), n})
		}
	}
	for _, matched := range []bool{false, true} {
		label := "disjoint"
		if matched {
			label = "contested"
		}
		b.Run(label, func(b *testing.B) {
			var sigma constraint.Set
			for i := 0; i < 2 && i < len(occs); i++ {
				lo, hi := constraint.CoverageBounds(occs[i].n, 10, 0.3, 0.9)
				sigma = append(sigma, constraint.New("OCCUPATION", occs[i].value, lo, hi))
				indOcc := occs[i].value
				if !matched && i+2 < len(occs) {
					indOcc = occs[i+2].value
				}
				ind := dataset.IndustryOf(indOcc)
				indIdx, _ := rel.Schema().Index("INDUSTRY")
				if code, ok := rel.Dict(indIdx).Lookup(ind); ok {
					n := rel.Count(indIdx, code)
					ilo, ihi := constraint.CoverageBounds(n, 10, 0.3, 0.9)
					sigma = append(sigma, constraint.New("INDUSTRY", ind, ilo, ihi))
				}
			}
			runDIVABench(b, rel, sigma, 10, search.MaxFanOut)
		})
	}
}

// BenchmarkFig4d_AccuracyVsDistribution: DIVA per value distribution
// (Pop-Syn).
func BenchmarkFig4d_AccuracyVsDistribution(b *testing.B) {
	for _, dist := range []dataset.Distribution{dataset.Zipfian, dataset.Uniform, dataset.Gaussian} {
		rel := benchRelation(b, dataset.PopSyn(dist), benchRows)
		sigma := benchSigma(b, rel, 8, 10)
		b.Run(dist.String(), func(b *testing.B) {
			runDIVABench(b, rel, sigma, 10, search.MaxFanOut)
		})
	}
}

// fig5Algorithms runs the five series of the baseline comparison.
func fig5Algorithms(b *testing.B, rel *diva.Relation, sigma constraint.Set, k int) {
	b.Run("MinChoice", func(b *testing.B) { runDIVABench(b, rel, sigma, k, search.MinChoice) })
	b.Run("MaxFanOut", func(b *testing.B) { runDIVABench(b, rel, sigma, k, search.MaxFanOut) })
	b.Run("k-member", func(b *testing.B) {
		runBaselineBench(b, rel, &anon.KMember{Rng: rand.New(rand.NewPCG(1, 2)), SampleCap: 256}, k)
	})
	b.Run("OKA", func(b *testing.B) {
		runBaselineBench(b, rel, &anon.OKA{Rng: rand.New(rand.NewPCG(1, 2))}, k)
	})
	b.Run("Mondrian", func(b *testing.B) {
		runBaselineBench(b, rel, &anon.Mondrian{}, k)
	})
}

// BenchmarkFig5a_AccuracyVsK and BenchmarkFig5b_RuntimeVsK: the Credit
// baseline comparison at the sweep's endpoints (accuracy is the reported
// metric; ns/op is the runtime series).
func BenchmarkFig5a_AccuracyVsK(b *testing.B) {
	rel := benchRelation(b, dataset.Credit(), dataset.CreditRows)
	for _, k := range []int{10, 50} {
		sigma := benchSigma(b, rel, 6, k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) { fig5Algorithms(b, rel, sigma, k) })
	}
}

// BenchmarkFig5b_RuntimeVsK mirrors Fig5a; the figure reads ns/op.
func BenchmarkFig5b_RuntimeVsK(b *testing.B) {
	rel := benchRelation(b, dataset.Credit(), dataset.CreditRows)
	sigma := benchSigma(b, rel, 6, 30)
	b.Run("k=30", func(b *testing.B) { fig5Algorithms(b, rel, sigma, 30) })
}

// BenchmarkFig5c_AccuracyVsSize and BenchmarkFig5d_RuntimeVsSize: the
// Census size sweep at two scaled sizes.
func BenchmarkFig5c_AccuracyVsSize(b *testing.B) {
	for _, rows := range []int{1500, 4500} {
		rel := benchRelation(b, dataset.Census(), rows)
		sigma := benchSigma(b, rel, 8, 10)
		b.Run(fmt.Sprintf("R=%d", rows), func(b *testing.B) { fig5Algorithms(b, rel, sigma, 10) })
	}
}

// BenchmarkFig5d_RuntimeVsSize mirrors Fig5c; the figure reads ns/op.
func BenchmarkFig5d_RuntimeVsSize(b *testing.B) {
	rel := benchRelation(b, dataset.Census(), 3000)
	sigma := benchSigma(b, rel, 8, 10)
	b.Run("R=3000", func(b *testing.B) { fig5Algorithms(b, rel, sigma, 10) })
}
