//go:build race

package diva_test

// raceEnabled reports whether the race detector is compiled in; alloc
// pinning is meaningless under its instrumentation overhead.
const raceEnabled = true
