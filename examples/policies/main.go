// Policies: privacy criteria beyond k-anonymity, and generalization-aware
// loss accounting.
//
// A hospital publishes patient records under three regimes of increasing
// strength — plain k-anonymity, k-anonymity with diversity constraints, and
// the same plus distinct l-diversity on the sensitive diagnosis — and
// reports suppression loss and the normalized certainty penalty (NCP) under
// a geographic generalization hierarchy for each regime. The example shows
// the paper's extension hook in action: DIVA's clustering criteria swap
// from k-anonymity alone to composite criteria without touching the
// algorithm.
//
// Run with: go run ./examples/policies
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"diva"
	"diva/internal/dataset"
	"diva/internal/hierarchy"
	"diva/internal/relation"
)

func main() {
	// A 4,000-person synthetic population with realistic skew.
	rel := dataset.PopSyn(dataset.Zipfian).Generate(4000, 2024)

	// Floors keep small groups visible: at least 85% of each minority
	// group's records must survive anonymization with their characteristic
	// value intact — far more than a constraint-blind anonymizer preserves.
	sigma := diva.Constraints{
		floorConstraint(rel, "ETH", "Indigenous", 0.85),
		floorConstraint(rel, "ETH", "MiddleEastern", 0.85),
		floorConstraint(rel, "PRV", "PE", 0.85),
	}

	// The provinces' cities generalize province-wise; NCP uses this
	// hierarchy to price suppressed geography cells fairly.
	hset := hierarchy.Set{"CTY": cityHierarchy(rel)}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "regime\tk-anon\tΣ ok\t2-diverse\tstars\taccuracy\tNCP")

	report := func(name string, out *diva.Relation, sigmaChecked diva.Constraints) {
		sigmaOK := true
		if sigmaChecked != nil {
			ok, err := sigmaChecked.SatisfiedBy(out)
			if err != nil {
				log.Fatal(err)
			}
			sigmaOK = ok
		}
		fmt.Fprintf(w, "%s\t%t\t%t\t%t\t%d\t%.4f\t%.4f\n",
			name,
			diva.IsKAnonymous(out, 8),
			sigmaOK,
			diva.IsLDiverse(out, 2),
			diva.SuppressionLoss(out),
			diva.Accuracy(out),
			hierarchy.NCP(out, hset),
		)
	}

	// Regime 1: plain 8-anonymity (k-member).
	plain, err := diva.AnonymizeBaselineContext(context.Background(), rel, "k-member", diva.Options{K: 8, Seed: 1, SampleCap: 256})
	if err != nil {
		log.Fatal(err)
	}
	report("k-anonymity", plain, sigma)

	// Regime 2: 8-anonymity + diversity constraints (DIVA).
	res, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 8, Strategy: diva.MaxFanOut, Seed: 1, SampleCap: 256})
	if err != nil {
		log.Fatal(err)
	}
	report("+ diversity Σ", res.Output, sigma)

	// Regime 3: the same plus distinct 2-diversity on DIAG and OCC.
	res2, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{
		K: 8, Strategy: diva.MaxFanOut, Seed: 1, SampleCap: 256, LDiversity: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("+ 2-diversity", res2.Output, sigma)

	w.Flush()
	fmt.Println("\nEach added guarantee costs suppression; NCP prices geography cells by")
	fmt.Println("how much of the city hierarchy a published value still pins down.")
}

// floorConstraint demands that at least frac of the value's occurrences
// stay visible.
func floorConstraint(rel *diva.Relation, attr, value string, frac float64) diva.Constraint {
	idx, ok := rel.Schema().Index(attr)
	if !ok {
		log.Fatalf("no attribute %s", attr)
	}
	code, ok := rel.Dict(idx).Lookup(value)
	if !ok {
		log.Fatalf("no value %s[%s]", attr, value)
	}
	freq := 0
	for i := 0; i < rel.Len(); i++ {
		if rel.Code(i, idx) == code {
			freq++
		}
	}
	lo := int(float64(freq) * frac)
	if lo < 1 {
		lo = 1
	}
	return diva.NewConstraint(attr, value, lo, freq)
}

// cityHierarchy builds CTY -> PRV -> ★ from the generated city names
// ("ON-city3" belongs to province "ON").
func cityHierarchy(rel *diva.Relation) *hierarchy.Hierarchy {
	cty, _ := rel.Schema().Index("CTY")
	prv, _ := rel.Schema().Index("PRV")
	b := hierarchy.NewBuilder("CTY")
	provinces := map[string]bool{}
	for i := 0; i < rel.Len(); i++ {
		b.Add(rel.Value(i, prv), rel.Value(i, cty))
		provinces[rel.Value(i, prv)] = true
	}
	for p := range provinces {
		b.Add(relation.Star, p)
	}
	h, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return h
}
