// Distributions: how data skew affects diverse anonymization (the paper's
// Figure 4d study, at example scale).
//
// The same population schema is generated under Zipfian, uniform and
// Gaussian value distributions; DIVA runs with identical settings on each,
// and the example reports accuracy per strategy. Uniform data spreads
// domain values evenly and avoids contention among constraint target sets,
// so it anonymizes most accurately; Zipfian data concentrates tuples on few
// values and loses the most.
//
// Run with: go run ./examples/distributions [-rows 10000] [-k 10]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"text/tabwriter"

	"diva"
	"diva/internal/constraint"
	"diva/internal/dataset"
)

func main() {
	rows := flag.Int("rows", 10000, "population rows to generate per distribution")
	k := flag.Int("k", 10, "privacy parameter")
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "distribution\tMinChoice\tMaxFanOut\tBasic\t|Π_QI(R)|")

	for _, dist := range []dataset.Distribution{dataset.Zipfian, dataset.Uniform, dataset.Gaussian} {
		rel := dataset.PopSyn(dist).Generate(*rows, 4)
		sigma, err := constraint.Proportional(rel, constraint.GenOptions{
			Count: 8,
			K:     *k,
			Rng:   rand.New(rand.NewPCG(5, uint64(dist))),
		})
		if err != nil {
			log.Fatalf("%s: %v", dist, err)
		}

		accs := make([]string, 0, 3)
		for _, strat := range []diva.Strategy{diva.MinChoice, diva.MaxFanOut, diva.Basic} {
			res, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{
				K: *k, Strategy: strat, Seed: 17, SampleCap: 512,
			})
			if err != nil {
				accs = append(accs, "failed")
				continue
			}
			accs = append(accs, fmt.Sprintf("%.4f", diva.Accuracy(res.Output)))
		}
		qi := rel.Schema().QIIndexes()
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\n", dist, accs[0], accs[1], accs[2], rel.DistinctCount(qi))
	}
	w.Flush()
}
