// Healthcare: the paper's running example (Tables 1–3) end to end.
//
// It builds the ten-patient medical relation of Table 1, shows what a plain
// 3-anonymization loses (Table 2: the African ethnicity and the female
// Caucasians disappear), then runs DIVA with the diversity constraints of
// Example 3.1 and shows that the published relation keeps every group
// visible (Table 3).
//
// Run with: go run ./examples/healthcare
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"diva"
)

func main() {
	rel := buildTable1()
	fmt.Println("Table 1 — original medical records:")
	printRelation(rel)

	// Plain k-anonymization (what Table 2 shows): k = 3, no diversity.
	plain, err := diva.AnonymizeBaselineContext(context.Background(), rel, "k-member", diva.Options{K: 3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPlain 3-anonymous relation (Table 2 shape):")
	printRelation(plain)
	reportVisibility(plain, "plain 3-anonymization")

	// DIVA: k = 2 with Σ = {σ1, σ2, σ3} of Example 3.1.
	sigma := diva.Constraints{
		diva.NewConstraint("ETH", "Asian", 2, 5),     // σ1
		diva.NewConstraint("ETH", "African", 1, 3),   // σ2
		diva.NewConstraint("CTY", "Vancouver", 2, 4), // σ3
	}
	res, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 2, Strategy: diva.MinChoice, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDIVA 2-anonymous and diverse relation (Table 3 shape):")
	printRelation(res.Output)
	reportVisibility(res.Output, "DIVA")

	fmt.Printf("\ncoloring search: %d steps, %d backtracks\n", res.Stats.Steps, res.Stats.Backtracks)
	if err := diva.Verify(rel, res, sigma, 2); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Println("verified: R ⊑ R′, 2-anonymous, satisfies Σ")
}

func buildTable1() *diva.Relation {
	schema := diva.MustSchema(
		diva.Attribute{Name: "GEN", Role: diva.QI},
		diva.Attribute{Name: "ETH", Role: diva.QI},
		diva.Attribute{Name: "AGE", Role: diva.QI, Kind: diva.Numeric},
		diva.Attribute{Name: "PRV", Role: diva.QI},
		diva.Attribute{Name: "CTY", Role: diva.QI},
		diva.Attribute{Name: "DIAG", Role: diva.Sensitive},
	)
	rel := diva.NewRelation(schema)
	for _, row := range [][]string{
		{"Female", "Caucasian", "80", "AB", "Calgary", "Hypertension"},
		{"Female", "Caucasian", "32", "AB", "Calgary", "Tuberculosis"},
		{"Male", "Caucasian", "59", "AB", "Calgary", "Osteoarthritis"},
		{"Male", "Caucasian", "46", "MB", "Winnipeg", "Migraine"},
		{"Male", "African", "32", "MB", "Winnipeg", "Hypertension"},
		{"Male", "African", "43", "BC", "Vancouver", "Seizure"},
		{"Male", "Caucasian", "35", "BC", "Vancouver", "Hypertension"},
		{"Female", "Asian", "58", "BC", "Vancouver", "Seizure"},
		{"Female", "Asian", "63", "MB", "Winnipeg", "Influenza"},
		{"Female", "Asian", "71", "BC", "Vancouver", "Migraine"},
	} {
		rel.MustAppendValues(row...)
	}
	return rel
}

func printRelation(rel *diva.Relation) {
	schema := rel.Schema()
	widths := make([]int, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		widths[i] = len(schema.Attr(i).Name)
	}
	for i := 0; i < rel.Len(); i++ {
		for a, v := range rel.Values(i) {
			if len(v) > widths[a] {
				widths[a] = len(v)
			}
		}
	}
	var b strings.Builder
	for i := 0; i < schema.Len(); i++ {
		fmt.Fprintf(&b, "%-*s  ", widths[i], schema.Attr(i).Name)
	}
	fmt.Println(strings.TrimRight(b.String(), " "))
	for i := 0; i < rel.Len(); i++ {
		b.Reset()
		for a, v := range rel.Values(i) {
			fmt.Fprintf(&b, "%-*s  ", widths[a], v)
		}
		fmt.Println(strings.TrimRight(b.String(), " "))
	}
}

// reportVisibility counts how many tuples keep each ethnicity visible.
func reportVisibility(rel *diva.Relation, label string) {
	eth, _ := rel.Schema().Index("ETH")
	counts := map[string]int{}
	for i := 0; i < rel.Len(); i++ {
		counts[rel.Value(i, eth)]++
	}
	fmt.Printf("visible ethnicities after %s: ", label)
	for _, v := range []string{"Caucasian", "African", "Asian", diva.Star} {
		fmt.Printf("%s=%d ", v, counts[v])
	}
	fmt.Println()
}
