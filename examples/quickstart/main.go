// Quickstart: anonymize a small in-memory relation under k-anonymity and
// two diversity constraints, then print the published table.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"diva"
)

func main() {
	// A relation can be built programmatically or loaded from CSV with an
	// annotated header (name:role[:kind]).
	const csvData = `GEN:qi,ETH:qi,AGE:qi:numeric,PRV:qi,CTY:qi,DIAG:sensitive
Female,Caucasian,80,AB,Calgary,Hypertension
Female,Caucasian,32,AB,Calgary,Tuberculosis
Male,Caucasian,59,AB,Calgary,Osteoarthritis
Male,Caucasian,46,MB,Winnipeg,Migraine
Male,African,32,MB,Winnipeg,Hypertension
Male,African,43,BC,Vancouver,Seizure
Male,Caucasian,35,BC,Vancouver,Hypertension
Female,Asian,58,BC,Vancouver,Seizure
Female,Asian,63,MB,Winnipeg,Influenza
Female,Asian,71,BC,Vancouver,Migraine
`
	rel, err := diva.ReadAnnotatedCSV(strings.NewReader(csvData))
	if err != nil {
		log.Fatal(err)
	}

	// Diversity constraints: the published table must retain 2–5 visible
	// Asian patients, at least one African patient, and 2–4 Vancouver
	// records.
	sigma := diva.Constraints{
		diva.NewConstraint("ETH", "Asian", 2, 5),
		diva.NewConstraint("ETH", "African", 1, 3),
		diva.NewConstraint("CTY", "Vancouver", 2, 4),
	}

	res, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{
		K:        2,
		Strategy: diva.MaxFanOut,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("2-anonymous and diverse (%d tuples, accuracy %.2f):\n\n",
		res.Output.Len(), diva.Accuracy(res.Output))
	if err := diva.WriteCSV(os.Stdout, res.Output); err != nil {
		log.Fatal(err)
	}

	ok, err := sigma.SatisfiedBy(res.Output)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nk-anonymous: %t, satisfies Σ: %t\n",
		diva.IsKAnonymous(res.Output, 2), ok)
}
