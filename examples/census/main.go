// Census: diverse publishing of a large demographic relation.
//
// A data custodian wants to publish a k-anonymous census extract for
// third-party analysis while guaranteeing that minority demographic groups
// stay visible: plain k-anonymization routinely suppresses exactly the
// attribute values that characterize small groups, biasing downstream
// analysis (the motivation of the paper's §1).
//
// The example generates a census-profile relation, derives proportional
// representation constraints over its demographic attributes, runs DIVA,
// and contrasts the result with a plain k-member anonymization: the
// baseline violates the diversity requirements that DIVA guarantees, at a
// comparable suppression cost.
//
// Run with: go run ./examples/census [-rows 20000] [-k 10] [-sigma 8]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"

	"diva"
	"diva/internal/constraint"
	"diva/internal/dataset"
)

func main() {
	rows := flag.Int("rows", 20000, "census rows to generate")
	k := flag.Int("k", 10, "privacy parameter")
	nSigma := flag.Int("sigma", 8, "number of diversity constraints")
	flag.Parse()

	fmt.Printf("generating census profile (%d rows)...\n", *rows)
	rel := dataset.Census().Generate(*rows, 2021)

	// Proportional representation constraints over the demographic QI
	// attributes: each selected value must keep at least 10% of its
	// occurrences visible (and at least k, to avoid tokenism).
	sigma, err := constraint.Proportional(rel, constraint.GenOptions{
		Attrs: []string{"SEX", "RACE", "EDUCATION", "REGION"},
		Count: *nSigma,
		K:     *k,
		Rng:   rand.New(rand.NewPCG(11, 13)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiversity constraints (|Σ| = %d):\n%s\n", len(sigma), sigma)

	cf, err := diva.ConflictRate(rel, sigma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconflict rate cf(Σ) = %.3f\n", cf)

	// DIVA with the paper's best strategy.
	res, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{
		K:         *k,
		Strategy:  diva.MaxFanOut,
		Seed:      99,
		SampleCap: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDIVA (MaxFanOut): accuracy=%.4f suppressed-cells=%d disc=%d coloring-steps=%d repairs=%d\n",
		diva.Accuracy(res.Output), diva.SuppressionLoss(res.Output),
		diva.Discernibility(res.Output, *k), res.Stats.Steps, res.RepairedCells)
	if ok, _ := sigma.SatisfiedBy(res.Output); !ok {
		log.Fatal("DIVA output violates Σ (bug)")
	}
	fmt.Println("DIVA output satisfies every diversity constraint")

	// Plain k-member for contrast.
	plain, err := diva.AnonymizeBaselineContext(context.Background(), rel, "k-member", diva.Options{K: *k, Seed: 99, SampleCap: 512})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nk-member baseline: accuracy=%.4f suppressed-cells=%d disc=%d\n",
		diva.Accuracy(plain), diva.SuppressionLoss(plain), diva.Discernibility(plain, *k))
	viol, err := sigma.Violations(plain)
	if err != nil {
		log.Fatal(err)
	}
	if len(viol) == 0 {
		fmt.Println("baseline happens to satisfy Σ on this draw")
	} else {
		fmt.Printf("baseline violates %d of %d constraints:\n", len(viol), len(sigma))
		for _, v := range viol {
			fmt.Println("  ", v)
		}
	}
}
