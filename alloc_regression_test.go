package diva_test

import (
	"math/rand/v2"
	"testing"

	"diva/internal/cluster"
	"diva/internal/constraint"
	"diva/internal/dataset"
	"diva/internal/search"
	"diva/internal/trace"
)

// TestColorPhaseAllocsWithoutLearning pins the allocation budget of the
// BenchmarkColorPhase workload when nogood learning is off. The conflict
// attribution the learner consumes (per-visit blocker counts, pool-neighbor
// sets, assignment fingerprints) is maintained only when a tracer or a
// learner asks for it, so a plain Color call must cost exactly what it did
// before learning existed: 665 allocs for MinChoice and 376 for MaxFanOut —
// the pre-learning baselines. Basic is pinned at 408 (was 406): its node
// selection became state-pure (hashing the colored-set fingerprint instead
// of consuming the shared RNG stream) so that learning-driven backjumps
// cannot perturb replay determinism, and the fingerprint lookup costs two
// allocations per run at this workload. Any growth beyond these pins means
// learning machinery leaked onto the learning-off path.
func TestColorPhaseAllocsWithoutLearning(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc pinning at benchmark scale")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	rel := dataset.Census().Generate(2000, 42)
	// Same workload as BenchmarkColorPhase: census relation, benchSigma's
	// generator seed, K = 10.
	sigma, err := constraint.Proportional(rel, constraint.GenOptions{
		Count: 8,
		K:     10,
		Rng:   rand.New(rand.NewPCG(3, 14)),
	})
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := sigma.Bind(rel)
	if err != nil {
		t.Fatal(err)
	}
	pins := map[search.Strategy]int64{
		search.Basic:     408,
		search.MinChoice: 665,
		search.MaxFanOut: 376,
	}
	for _, strat := range []search.Strategy{search.Basic, search.MinChoice, search.MaxFanOut} {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graph := search.BuildGraph(rel, bounds, cluster.Options{K: 10})
				if _, _, found := graph.Color(search.Options{
					Strategy: strat,
					Rng:      rand.New(rand.NewPCG(9, 7)),
				}); !found {
					b.Fatal("no coloring")
				}
			}
		})
		if got := res.AllocsPerOp(); got > pins[strat] {
			t.Errorf("%s: %d allocs/op with learning off, budget %d — learning machinery leaked onto the chronological path",
				strat, got, pins[strat])
		}
	}
}

// TestColorPhaseAllocsWithFlightRecorder pins the cost of live telemetry on
// the same workload: attaching a flight recorder as the search tracer (the
// ops registry attaches one to every run, subscriber or not) costs exactly 6
// allocs/op over the untraced pins — the recorder itself, its preallocated
// ring, and the conflict-attribution state a tracer activates. The budget is
// deliberately independent of event volume: FlightRecorder.Record writes
// into the ring by value, so thousands of trace events add zero allocations.
// Growth here means per-event allocation crept into the hot tracing path.
func TestColorPhaseAllocsWithFlightRecorder(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc pinning at benchmark scale")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	rel := dataset.Census().Generate(2000, 42)
	sigma, err := constraint.Proportional(rel, constraint.GenOptions{
		Count: 8,
		K:     10,
		Rng:   rand.New(rand.NewPCG(3, 14)),
	})
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := sigma.Bind(rel)
	if err != nil {
		t.Fatal(err)
	}
	pins := map[search.Strategy]int64{
		search.Basic:     414,
		search.MinChoice: 671,
		search.MaxFanOut: 382,
	}
	for _, strat := range []search.Strategy{search.Basic, search.MinChoice, search.MaxFanOut} {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec := trace.NewFlightRecorder(trace.DefaultFlightCapacity)
				graph := search.BuildGraph(rel, bounds, cluster.Options{K: 10})
				if _, _, found := graph.Color(search.Options{
					Strategy: strat,
					Rng:      rand.New(rand.NewPCG(9, 7)),
					Tracer:   rec,
				}); !found {
					b.Fatal("no coloring")
				}
				if rec.Seen() == 0 {
					b.Fatal("flight recorder saw no events")
				}
			}
		})
		if got := res.AllocsPerOp(); got > pins[strat] {
			t.Errorf("%s: %d allocs/op with a flight recorder attached, budget %d — per-event allocation crept into the tracing path",
				strat, got, pins[strat])
		}
	}
}
