// Package diva is a Go implementation of DIVA, the DIVersity-driven
// Anonymization algorithm of Milani, Huang and Chiang ("Preserving Diversity
// in Anonymized Data", EDBT 2021). It publishes k-anonymous relations that
// additionally satisfy declarative diversity constraints — lower and upper
// bounds on how often characteristic attribute values must appear in the
// published data — using value suppression with minimal information loss.
//
// The package also ships three classical k-anonymization baselines
// (k-member, OKA, Mondrian), the evaluation metrics of the paper
// (suppression loss, discernibility, accuracy, conflict rate), constraint
// workload generators, and synthetic dataset generators mirroring the
// paper's evaluation datasets.
//
// # Quick start
//
//	rel, _ := diva.ReadAnnotatedCSV(file)        // header: NAME:role[:kind]
//	sigma := diva.Constraints{
//		diva.NewConstraint("ETH", "Asian", 2, 5),
//		diva.NewConstraint("CTY", "Vancouver", 2, 4),
//	}
//	res, err := diva.AnonymizeContext(ctx, rel, sigma, diva.Options{
//		K:        3,
//		Strategy: diva.MaxFanOut,
//		Seed:     42,
//	})
//	if err != nil { ... }
//	diva.WriteCSV(os.Stdout, res.Output)
//
// # Cancellation and observability
//
// AnonymizeContext is the primary entry point: the context cancels the run
// at search-step granularity (the coloring) and split granularity (the
// baseline partitioners), returning an error wrapping both ErrCanceled and
// the context's own error; the Result returned alongside it is non-nil and
// carries the partial RunMetrics. Anonymize and AnonymizeBaseline are
// deprecated thin wrappers over context.Background() kept for existing
// callers — migrating is a mechanical ctx-first argument insertion, no
// other call-site change.
//
// # Baseline partitioners
//
// Tuples outside the diverse clustering are k-anonymized by a baseline
// partitioner. The default is parallel Mondrian (deterministic output at
// any Options.Parallelism); Options.Baseline selects k-member or OKA
// instead, and Options.Anonymizer accepts any Partitioner implementation:
//
//	p, _ := diva.NewBaseline(diva.KMember)       // a built-in to decorate
//	res, err := diva.AnonymizeContext(ctx, rel, sigma, diva.Options{
//		K:          3,
//		Anonymizer: myDecorator{p},              // overrides Baseline
//	})
//
// Set Options.Tracer to observe a run: phase boundaries (bind, build-graph,
// color, suppress, baseline, integrate, verify), per-node assign/backtrack
// events, candidate-cache hits and the portfolio's winning worker stream as
// typed Events. NewWriterTracer renders them as text; any Tracer
// implementation works. Whether or not a tracer is set, every Result
// carries aggregated RunMetrics (per-phase wall times, step/backtrack
// counts, cache statistics), each phase runs under a runtime/pprof
// "diva_phase" label, and process-wide totals accumulate in expvar under
// the "diva." prefix.
package diva

import (
	"context"
	"io"
	"math/rand/v2"
	"strings"

	"diva/internal/anon"
	"diva/internal/cluster"
	"diva/internal/constraint"
	"diva/internal/core"
	"diva/internal/hierarchy"
	"diva/internal/history"
	"diva/internal/metrics"
	"diva/internal/privacy"
	"diva/internal/profile"
	"diva/internal/relation"
	"diva/internal/search"
	"diva/internal/trace"
	"diva/internal/verify"
)

// Re-exported relational substrate types. See the internal/relation package
// for full documentation.
type (
	// Relation is a dictionary-encoded tuple store over a fixed schema.
	Relation = relation.Relation
	// Schema is an ordered list of attributes with privacy roles.
	Schema = relation.Schema
	// Attribute describes one column: name, role and kind.
	Attribute = relation.Attribute
	// Role classifies an attribute as QI, Sensitive or Identifier.
	Role = relation.Role
	// Kind classifies an attribute domain as Categorical or Numeric.
	Kind = relation.Kind
)

// Attribute roles and kinds.
const (
	QI          = relation.QI
	Sensitive   = relation.Sensitive
	Identifier  = relation.Identifier
	Categorical = relation.Categorical
	Numeric     = relation.Numeric
)

// Star is the textual rendering of the suppression marker ★.
const Star = relation.Star

// Hierarchy is a value generalization hierarchy for one attribute; see
// NewIntervalHierarchy and ParseHierarchy.
type Hierarchy = hierarchy.Hierarchy

// Hierarchies maps attribute names to their generalization hierarchies.
type Hierarchies = hierarchy.Set

// Constraint is a diversity constraint σ = (X[t], λl, λr).
type Constraint = constraint.Constraint

// Constraints is a set of diversity constraints Σ.
type Constraints = constraint.Set

// Result carries a DIVA run's output relation and diagnostics.
type Result = core.Result

// Strategy selects DIVA's coloring node order.
type Strategy = search.Strategy

// Node-selection strategies for the diverse-clustering search.
const (
	// Basic picks random nodes (DIVA-Basic).
	Basic = search.Basic
	// MinChoice picks the most constrained node first.
	MinChoice = search.MinChoice
	// MaxFanOut picks the node with the most uncolored neighbors first.
	MaxFanOut = search.MaxFanOut
)

// ShardsAuto, set on Options.Shards, sizes the shard-and-merge engine
// automatically from GOMAXPROCS and the relation size; small relations run
// monolithically.
const ShardsAuto = core.ShardsAuto

// ErrNoDiverseClustering is returned when no k-anonymous relation satisfying
// the constraints exists (or none was found within the search budget).
var ErrNoDiverseClustering = core.ErrNoDiverseClustering

// ErrCanceled is returned (wrapped, alongside the context's own error) when
// a run is stopped by context cancellation or deadline expiry. The Result
// returned with it is non-nil and carries the partial RunMetrics.
var ErrCanceled = core.ErrCanceled

// Observability types, re-exported from the tracing layer. A Tracer set on
// Options receives every Event of a run; RunMetrics is the aggregated
// per-run summary attached to Result.Metrics.
type (
	// Tracer observes run events; implementations must be cheap, and must
	// be safe for concurrent use only if shared across concurrent runs.
	Tracer = trace.Tracer
	// Event is one traced occurrence: a phase boundary, a search step or a
	// portfolio outcome.
	Event = trace.Event
	// EventKind discriminates Event payloads.
	EventKind = trace.EventKind
	// Phase names one stage of a run.
	Phase = trace.Phase
	// RunMetrics aggregates one run's timings and counters.
	RunMetrics = trace.RunMetrics
	// PhaseTiming is one phase's measured wall time.
	PhaseTiming = trace.PhaseTiming
	// Recorder is a goroutine-safe Tracer aggregating a run's events into
	// a RunMetrics.
	Recorder = trace.Recorder
)

// Event kinds.
const (
	KindPhaseStart = trace.KindPhaseStart
	KindPhaseEnd   = trace.KindPhaseEnd
	KindAssign     = trace.KindAssign
	KindBacktrack  = trace.KindBacktrack
	KindCandidates = trace.KindCandidates
	KindCacheHit   = trace.KindCacheHit
	KindWorkerWin  = trace.KindWorkerWin
	// KindProgress is the search's liveness heartbeat: cumulative
	// step/backtrack counters, coloring depth and the emitting portfolio
	// worker, sent every few hundred steps and once at search end. In
	// portfolio mode heartbeats reach the Tracer concurrently from every
	// worker; handle at least this kind in a goroutine-safe way.
	KindProgress = trace.KindProgress
	// KindSplit reports one recursive cut of the baseline partitioner:
	// the cut attribute (Label, "" for a leaf), partition size (N),
	// recursion depth and cut wall time. The engine serializes these before
	// they reach a Tracer, even when Mondrian runs parallel.
	KindSplit = trace.KindSplit
	// KindShard announces one unit of a sharded run's plan: a Σ connected
	// component (Label "component": Node is the component index, N its
	// QI-pool size, Depth its constraint count) or a QI-local rest shard
	// (Label "rest": Node is the shard index, N its row count). Emitted
	// sequentially by the coordinator; see Options.Shards.
	KindShard = trace.KindShard
	// KindNogood reports one learned nogood (Options.Nogoods): Node is the
	// node whose visit exhausted, Members the conflict-set size, Depth the
	// coloring depth. Replayed as batched per-node counts (N) after
	// portfolio and sharded searches.
	KindNogood = trace.KindNogood
	// KindBackjump reports one conflict-directed backjump: Node is the
	// landing node, Skipped the levels jumped over (each still emits its
	// KindBacktrack), Depth the coloring depth at the landing.
	KindBackjump = trace.KindBackjump
)

// Run phases, in execution order.
const (
	PhaseBind       = trace.PhaseBind
	PhaseBuildGraph = trace.PhaseBuildGraph
	PhaseColor      = trace.PhaseColor
	PhaseSuppress   = trace.PhaseSuppress
	PhaseBaseline   = trace.PhaseBaseline
	PhaseIntegrate  = trace.PhaseIntegrate
	PhaseVerify     = trace.PhaseVerify
)

// NewWriterTracer returns a Tracer that renders phase boundaries and
// portfolio outcomes as human-readable lines on w.
func NewWriterTracer(w io.Writer) Tracer { return trace.NewWriter(w) }

// Search profiling, re-exported from the profile layer. A Profiler is a
// Tracer that reconstructs the coloring search tree live; set it on
// Options.Tracer (trace.Tee it with other tracers as needed), then call
// Finish and Profile once the run ends. The resulting Profile exports Chrome
// trace-event JSON (Perfetto), pprof-style folded stacks, a text summary,
// and the infeasibility Explanation — see `diva -profile` and `diva
// -explain`.
type (
	// Profiler reconstructs the search tree from a run's event stream.
	Profiler = profile.Profiler
	// SearchProfile is a finalized per-run search profile.
	SearchProfile = profile.Profile
	// Explanation attributes a coloring failure to concrete constraints.
	Explanation = profile.Explanation
)

// NewProfiler returns an empty search Profiler.
func NewProfiler() *Profiler { return profile.New() }

// Run history, re-exported from the history layer. With Options.HistoryDir
// (or DIVA_HISTORY_DIR) set, every run appends one HistoryRecord — config
// and dataset fingerprints, outcome, full RunMetrics — to a durable,
// size-rotated JSONL ledger that LoadHistory reads back and CompareHistory
// judges with a noise-aware regression verdict. The `divahist` CLI and the
// obs server's /debug/diva/history endpoints are thin layers over these.
type (
	// HistoryRecord is one ledgered run.
	HistoryRecord = history.Record
	// HistoryConfig is the engine/config fingerprint part of a record.
	HistoryConfig = history.Config
	// HistoryDataset is the input-relation fingerprint part of a record.
	HistoryDataset = history.Dataset
	// HistoryReport is the outcome of CompareHistory: per-phase deltas with
	// noise-floor verdicts.
	HistoryReport = history.Report
	// HistoryThresholds tunes the regression noise floor.
	HistoryThresholds = history.Thresholds
)

// LoadHistory reads the run ledger rooted at dir back into records (append
// order), tolerating a torn tail. A missing directory loads as empty.
func LoadHistory(dir string) ([]*HistoryRecord, error) {
	loaded, err := history.Load(dir)
	if err != nil {
		return nil, err
	}
	return loaded.Records, nil
}

// CompareHistory judges new runs against old ones phase by phase; deltas
// within the noise floor (median-absolute-deviation based, see
// HistoryThresholds) are verdicted as noise rather than regressions. A zero
// Thresholds applies the defaults (15% relative, 3×MAD, 5ms absolute).
func CompareHistory(old, new []*HistoryRecord, t HistoryThresholds) *HistoryReport {
	return history.Compare(old, new, t)
}

// RunOutcome classifies an Anonymize error for Profiler.Finish and
// dashboards: "ok", "canceled", "infeasible" or "error".
func RunOutcome(err error) string { return core.RunOutcome(err) }

// NewRecorder returns a Recorder. Feed it to Options.Tracer to aggregate a
// run's events independently of the engine's own Result.Metrics; the two
// end up identical (the final search heartbeat carries the authoritative
// counters, in sequential and portfolio mode alike).
func NewRecorder() *Recorder { return trace.NewRecorder() }

// NewSchema builds a schema from attributes; names must be unique.
func NewSchema(attrs ...Attribute) (*Schema, error) { return relation.NewSchema(attrs...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(attrs ...Attribute) *Schema { return relation.MustSchema(attrs...) }

// NewRelation returns an empty relation over schema.
func NewRelation(schema *Schema) *Relation { return relation.New(schema) }

// ReadCSV loads a relation from CSV whose header matches schema's attribute
// names.
func ReadCSV(r io.Reader, schema *Schema) (*Relation, error) { return relation.ReadCSV(r, schema) }

// ReadAnnotatedCSV loads a relation from CSV whose header carries
// "name:role[:kind]" annotations.
func ReadAnnotatedCSV(r io.Reader) (*Relation, error) { return relation.ReadAnnotatedCSV(r) }

// WriteCSV writes a relation as CSV with a plain header.
func WriteCSV(w io.Writer, rel *Relation) error { return relation.WriteCSV(w, rel) }

// NewConstraint returns a single-attribute diversity constraint
// (attr[value], lower, upper).
func NewConstraint(attr, value string, lower, upper int) Constraint {
	return constraint.New(attr, value, lower, upper)
}

// NewMultiConstraint returns a multi-attribute diversity constraint over
// parallel attrs and values.
func NewMultiConstraint(attrs, values []string, lower, upper int) Constraint {
	return constraint.NewMulti(attrs, values, lower, upper)
}

// ParseConstraint parses "ATTR[value], lower, upper" (optionally several
// ATTR[value] terms).
func ParseConstraint(line string) (Constraint, error) { return constraint.Parse(line) }

// ParseConstraints reads one constraint per line; '#' starts a comment.
func ParseConstraints(r io.Reader) (Constraints, error) { return constraint.ParseSet(r) }

// Partitioner is the pluggable baseline contract: it groups rows of a
// relation into clusters of at least k members, which the engine then
// renders k-anonymous by suppression. Set one on Options.Anonymizer to
// replace the built-in baselines entirely, or wrap the result of
// NewBaseline to decorate a built-in (caching, logging, fallback chains).
// Implementations must honor the documented contract: an error when
// 0 < len(rows) < k, an empty partition for no rows, prompt return of
// ctx.Err() after cancellation, and tolerance of a nil ctx.
type Partitioner = anon.Partitioner

// Baseline selects an off-the-shelf k-anonymization algorithm. The type is
// string-backed so existing code assigning string literals ("oka") keeps
// compiling; prefer the typed constants, and use ParseBaseline for
// user-supplied spellings. The enum is sugar over the Partitioner
// interface: NewBaseline turns a Baseline into the Partitioner the engine
// would construct for it.
type Baseline string

// The supported baseline algorithms.
const (
	// KMember is the greedy k-member clustering of Byun et al. — the
	// paper's quality-sensitive choice, served by a signature index in
	// exact mode.
	KMember Baseline = "k-member"
	// OKA is the one-pass k-means algorithm of Lin and Wei.
	OKA Baseline = "oka"
	// Mondrian is the multidimensional median partitioning of LeFevre et
	// al. (default), parallelized across Options.Parallelism workers.
	Mondrian Baseline = "mondrian"
)

// String returns the canonical spelling; the zero value reads as Mondrian.
func (b Baseline) String() string {
	if b == "" {
		return string(Mondrian)
	}
	return string(b)
}

// ParseBaseline maps a user-supplied name to a Baseline. It accepts the
// canonical spellings, legacy variants ("kmember", "Mondrian", "OKA") and
// any case; the empty string parses as Mondrian, the default.
func ParseBaseline(s string) (Baseline, error) {
	switch strings.ToLower(s) {
	case "", "mondrian":
		return Mondrian, nil
	case "k-member", "kmember":
		return KMember, nil
	case "oka":
		return OKA, nil
	}
	return "", &UnknownBaselineError{Name: s}
}

// NewBaseline returns the Partitioner the engine constructs for b with
// default options: parallel Mondrian at GOMAXPROCS, exact (indexed)
// k-member, or OKA, each seeded deterministically from Seed 0. Callers who
// need a different seed, sample cap, parallelism or privacy criterion
// should construct via Options (whose Baseline field goes through the same
// path) or supply their own Partitioner on Options.Anonymizer. The returned
// Partitioner is ready to compose: wrap it and set the wrapper on
// Options.Anonymizer.
func NewBaseline(b Baseline) (Partitioner, error) {
	o := Options{Baseline: b}
	return o.newPartitioner(o.rng(), nil)
}

// Options configures Anonymize.
type Options struct {
	// K is the privacy parameter: minimum QI-group size. Required, ≥ 1.
	K int
	// Strategy is the coloring node order; the zero value is Basic. The
	// paper's best-performing strategy is MaxFanOut.
	Strategy Strategy
	// Seed makes the run reproducible. Two runs with equal inputs and
	// seeds produce identical outputs.
	Seed uint64
	// MaxCandidates caps candidate clusterings per constraint (0 = 64).
	MaxCandidates int
	// MaxSteps caps coloring search steps (0 = 1,000,000).
	MaxSteps int
	// Baseline selects the off-the-shelf anonymizer for tuples outside the
	// diverse clustering: Mondrian (default), KMember or OKA. String
	// literals still assign (the type is string-backed); ParseBaseline
	// normalizes legacy spellings. Ignored when Anonymizer is non-nil.
	Baseline Baseline
	// Anonymizer, when non-nil, replaces the Baseline enum with a caller-
	// supplied Partitioner for the tuples outside the diverse clustering.
	// The partitioner must enforce any privacy criterion itself (the engine
	// re-verifies the final output regardless); SampleCap, Parallelism and
	// LDiversity do not reach it. Partitioners implementing the anon
	// package's TraceSink receive the run's tracer before the baseline
	// phase.
	Anonymizer Partitioner
	// SampleCap bounds k-member's greedy candidate scans (0 = exact, served
	// by the signature index). The experiment harness uses 512 on large
	// relations.
	SampleCap int
	// Parallelism bounds the Mondrian baseline's worker goroutines: 0 means
	// GOMAXPROCS, 1 forces sequential partitioning. The partition is
	// byte-identical at every setting. It has no effect on the other
	// baselines or on a caller-supplied Anonymizer.
	Parallelism int
	// LDiversity, when ≥ 2, additionally requires distinct l-diversity:
	// every QI-group of the output must carry at least LDiversity distinct
	// values of every sensitive attribute.
	LDiversity int
	// Parallel, when > 0, runs that many concurrent coloring searches (a
	// strategy portfolio) and takes the first result.
	Parallel int
	// Nogoods enables conflict-driven nogood learning in the coloring
	// search: exhausted nodes become learned conflict sets, the search
	// backjumps to the deepest assignment actually in the conflict, and
	// previously refuted partial colorings are pruned in O(1). Verdicts and
	// ★ accounting match the chronological search (enforced by the
	// differential suite in internal/verify); search effort on
	// dense-conflict Σ drops. Portfolio workers share one store; sharded
	// runs learn per component.
	Nogoods bool
	// Shards enables the shard-and-merge engine for large relations: the
	// constraint set is decomposed into independent connected components
	// colored concurrently, and the remaining tuples are partitioned in
	// QI-local shards. 0 disables sharding, ShardsAuto (-1) picks a count
	// from GOMAXPROCS and the relation size, and any value ≥ 2 is honored
	// as given. Output is deterministic for a fixed shard count and seed
	// (different counts may produce different — equally valid — outputs);
	// Parallelism bounds the fan-out. Runs that shard infeasibly fall back
	// to the monolithic engine transparently. Sharded runs ignore Parallel.
	Shards int
	// Hierarchies, when non-nil, renders clusters by generalization: cells
	// a cluster disagrees on lift to the least common ancestor of its
	// values ("[30-39]") instead of ★. Attributes without a hierarchy fall
	// back to suppression. Note Verify rejects generalized outputs (the
	// strict R ⊑ R′ relation holds only under suppression); check them
	// with IsKAnonymous, Constraints.SatisfiedBy and NCP instead.
	Hierarchies Hierarchies
	// Tracer, when non-nil, receives the run's Events: phase boundaries,
	// per-node search steps and portfolio outcomes. Run metrics are
	// collected on Result.Metrics whether or not a Tracer is set.
	Tracer Tracer
	// HistoryDir, when non-empty, appends one HistoryRecord per run (every
	// outcome) to the durable run ledger rooted in that directory — the
	// persistence spine behind `divahist` and /debug/diva/history. Empty
	// falls back to the DIVA_HISTORY_DIR environment variable; when both are
	// empty the ledger is off. Ledger failures never fail the run.
	HistoryDir string
}

func (o Options) rng() *rand.Rand {
	return rand.New(rand.NewPCG(o.Seed, o.Seed^0xda3e39cb94b95bdb))
}

func (o Options) criterion() privacy.Criterion {
	if o.LDiversity >= 2 {
		return privacy.DistinctLDiversity{L: o.LDiversity}
	}
	return nil
}

// newPartitioner is the single construction point for baseline
// partitioners, shared by AnonymizeContext, AnonymizeBaselineContext and
// NewBaseline so the paths cannot diverge on criterion handling: every
// baseline receives the privacy criterion, and OKA — which cannot enforce
// one — is rejected with UnsupportedBaselineError rather than silently
// weakened.
func (o Options) newPartitioner(rng *rand.Rand, crit privacy.Criterion) (anon.Partitioner, error) {
	b, err := ParseBaseline(string(o.Baseline))
	if err != nil {
		return nil, err
	}
	switch b {
	case KMember:
		return &anon.KMember{Rng: rng, SampleCap: o.SampleCap, Criterion: crit}, nil
	case Mondrian:
		return &anon.Mondrian{Criterion: crit, Parallelism: o.Parallelism}, nil
	case OKA:
		if crit != nil {
			return nil, &UnsupportedBaselineError{Baseline: OKA, Reason: "OKA cannot enforce l-diversity; use k-member or mondrian"}
		}
		return &anon.OKA{Rng: rng}, nil
	}
	return nil, &UnknownBaselineError{Name: string(o.Baseline)}
}

// AnonymizeContext runs DIVA under ctx: it returns a k-anonymous relation
// R′ with R ⊑ R′ satisfying every constraint in sigma, with minimal
// suppression. It returns an error wrapping ErrNoDiverseClustering when no
// such relation exists, and one wrapping ErrCanceled (and the context's
// error) when ctx is canceled or its deadline expires. On every outcome —
// success, ErrNoDiverseClustering or ErrCanceled — the returned Result is
// non-nil and carries the run's Metrics; on error its relations are nil.
func AnonymizeContext(ctx context.Context, rel *Relation, sigma Constraints, opts Options) (*Result, error) {
	rng := opts.rng()
	crit := opts.criterion()
	p := opts.Anonymizer
	if p == nil {
		var err error
		p, err = opts.newPartitioner(rng, crit)
		if err != nil {
			return nil, err
		}
	}
	return core.Anonymize(ctx, rel, sigma, core.Options{
		K:           opts.K,
		Strategy:    opts.Strategy,
		Rng:         rng,
		Cluster:     cluster.Options{MaxCandidates: opts.MaxCandidates},
		MaxSteps:    opts.MaxSteps,
		Anonymizer:  p,
		Parallelism: opts.Parallelism,
		Criterion:   crit,
		Parallel:    opts.Parallel,
		Nogoods:     opts.Nogoods,
		Shards:      opts.Shards,
		Hierarchies: opts.Hierarchies,
		Tracer:      opts.Tracer,
		HistoryDir:  opts.HistoryDir,
	})
}

// Anonymize runs DIVA without cancellation.
//
// Deprecated: use AnonymizeContext, which cancels the run at search-step
// and split granularity and reports partial metrics on abort; pass
// context.Background() for the exact behavior of this function. Anonymize
// is kept so existing callers compile, and is exercised only by its own
// compatibility tests.
func Anonymize(rel *Relation, sigma Constraints, opts Options) (*Result, error) {
	return AnonymizeContext(context.Background(), rel, sigma, opts)
}

// NewIntervalHierarchy builds a numeric generalization hierarchy over
// [lo, hi]: level ℓ groups values into intervals of width base^ℓ, topped by
// ★. See the hierarchy package for details.
func NewIntervalHierarchy(attr string, lo, hi, base, levels int) (*Hierarchy, error) {
	return hierarchy.Intervals(attr, lo, hi, base, levels)
}

// ParseHierarchy reads a categorical hierarchy from "child -> parent" lines
// ('#' comments, ★ or "*" as the root).
func ParseHierarchy(attr, text string) (*Hierarchy, error) {
	return hierarchy.ParseTable(attr, text)
}

// NCP returns the normalized certainty penalty of rel under the given
// hierarchies: the mean per-cell generalization loss over QI cells, in
// [0, 1]. Without hierarchies it equals 1 − Accuracy.
func NCP(rel *Relation, hs Hierarchies) float64 { return hierarchy.NCP(rel, hs) }

// IsLDiverse reports whether every QI-group of rel carries at least l
// distinct values of every sensitive attribute (distinct l-diversity).
func IsLDiverse(rel *Relation, l int) bool {
	ok, _ := privacy.Satisfies(rel, privacy.DistinctLDiversity{L: l})
	return ok
}

// AnonymizeBaselineContext runs one of the classical k-anonymizers
// (KMember, OKA, Mondrian) over the whole relation without diversity
// constraints, returning the suppressed k-anonymous relation. It honors
// Options.LDiversity exactly as AnonymizeContext does — the partitioner
// enforces the criterion, and OKA rejects it — and reports cancellation as
// an error wrapping ErrCanceled. A non-nil Options.Anonymizer overrides the
// baseline argument entirely, exactly as it overrides Options.Baseline in
// AnonymizeContext.
func AnonymizeBaselineContext(ctx context.Context, rel *Relation, baseline Baseline, opts Options) (*Relation, error) {
	p := opts.Anonymizer
	if p == nil {
		rng := opts.rng()
		o := opts
		o.Baseline = baseline
		var err error
		if p, err = o.newPartitioner(rng, o.criterion()); err != nil {
			return nil, err
		}
	}
	return core.RunBaseline(ctx, rel, p, opts.K, opts.Tracer)
}

// AnonymizeBaseline runs a classical k-anonymizer without cancellation.
//
// Deprecated: use AnonymizeBaselineContext, which cancels the partitioner
// at split granularity; pass context.Background() for the exact behavior
// of this function. AnonymizeBaseline is kept so existing callers compile,
// and is exercised only by its own compatibility tests.
func AnonymizeBaseline(rel *Relation, baseline Baseline, opts Options) (*Relation, error) {
	return AnonymizeBaselineContext(context.Background(), rel, baseline, opts)
}

// UnknownBaselineError reports an unrecognized baseline name.
type UnknownBaselineError struct{ Name string }

func (e *UnknownBaselineError) Error() string {
	return "diva: unknown baseline algorithm " + e.Name + ` (want "k-member", "oka" or "mondrian")`
}

// UnsupportedBaselineError reports a recognized baseline that cannot run
// under the requested options (for example OKA with an l-diversity
// criterion, which its one-pass structure cannot enforce).
type UnsupportedBaselineError struct {
	// Baseline is the recognized-but-rejected algorithm.
	Baseline Baseline
	// Reason explains the incompatibility.
	Reason string
}

func (e *UnsupportedBaselineError) Error() string {
	return "diva: baseline " + string(e.Baseline) + " unsupported under these options: " + e.Reason
}

// Verify checks that res is a valid (k, Σ)-anonymization of orig: R ⊑ R′
// up to reordering, k-anonymity, and R′ |= Σ — plus exact suppressed-cell
// accounting when res carries RunMetrics. For the full report (every
// violation, not just the first) use ValidateOutput.
func Verify(orig *Relation, res *Result, sigma Constraints, k int) error {
	return core.Verify(orig, res, sigma, k)
}

// ValidationReport is the outcome of ValidateOutput: every violated
// invariant, plus the measured suppressed-cell and QI-group counts. See the
// internal verify package for the full documentation.
type ValidationReport = verify.Report

// ValidationViolation is one broken invariant in a ValidationReport.
type ValidationViolation = verify.Violation

// ValidateOptions configures ValidateOutput.
type ValidateOptions struct {
	// LDiversity, when ≥ 2, additionally requires distinct l-diversity on
	// every QI-group of the output.
	LDiversity int
	// SkipContainment skips the strict R ⊑ R′ check. Outputs rendered with
	// generalization hierarchies hold ancestor labels instead of original
	// values or ★, so they fail strict containment by design; skip it for
	// those and rely on the remaining checks.
	SkipContainment bool
	// CheckStars, when true, requires the output's measured suppressed-QI-
	// cell count to equal Stars.
	CheckStars bool
	// Stars is the claimed suppressed-cell count checked under CheckStars.
	Stars int
}

// ValidateOutput runs the engine-independent invariant checker on a
// published relation: cardinality and schema preservation, R ⊑ R′ (cells
// change only to ★, up to tuple reordering), k-anonymity of every QI-group,
// satisfaction of every constraint's [λl, λr] bounds, optional distinct
// l-diversity, and suppression accounting. It reports every violation found
// rather than stopping at the first, which is what `diva -verify` prints
// and what the differential test harness asserts on.
func ValidateOutput(orig, out *Relation, sigma Constraints, k int, opts ValidateOptions) *ValidationReport {
	vo := verify.Options{
		SkipContainment: opts.SkipContainment,
		CheckStars:      opts.CheckStars,
		Stars:           opts.Stars,
	}
	if opts.LDiversity >= 2 {
		vo.Criterion = privacy.DistinctLDiversity{L: opts.LDiversity}
	}
	return verify.ValidateOutput(orig, out, sigma, k, vo)
}

// IsKAnonymous reports whether every tuple lies in a QI-group of ≥ k tuples.
func IsKAnonymous(rel *Relation, k int) bool { return metrics.IsKAnonymous(rel, k) }

// SuppressionLoss returns the number of suppressed QI cells (★s).
func SuppressionLoss(rel *Relation) int { return metrics.SuppressionLoss(rel) }

// Accuracy returns the fraction of QI cells preserved, in [0, 1].
func Accuracy(rel *Relation) float64 { return metrics.Accuracy(rel) }

// Discernibility returns the Bayardo–Agrawal discernibility penalty.
func Discernibility(rel *Relation, k int) int { return metrics.Discernibility(rel, k) }

// ConflictRate returns cf(Σ) over rel: the mean pairwise target-tuple
// overlap of the constraints, in [0, 1].
func ConflictRate(rel *Relation, sigma Constraints) (float64, error) {
	bounds, err := sigma.Bind(rel)
	if err != nil {
		return 0, err
	}
	return constraint.SetConflict(rel, bounds), nil
}
