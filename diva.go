// Package diva is a Go implementation of DIVA, the DIVersity-driven
// Anonymization algorithm of Milani, Huang and Chiang ("Preserving Diversity
// in Anonymized Data", EDBT 2021). It publishes k-anonymous relations that
// additionally satisfy declarative diversity constraints — lower and upper
// bounds on how often characteristic attribute values must appear in the
// published data — using value suppression with minimal information loss.
//
// The package also ships three classical k-anonymization baselines
// (k-member, OKA, Mondrian), the evaluation metrics of the paper
// (suppression loss, discernibility, accuracy, conflict rate), constraint
// workload generators, and synthetic dataset generators mirroring the
// paper's evaluation datasets.
//
// # Quick start
//
//	rel, _ := diva.ReadAnnotatedCSV(file)        // header: NAME:role[:kind]
//	sigma := diva.Constraints{
//		diva.NewConstraint("ETH", "Asian", 2, 5),
//		diva.NewConstraint("CTY", "Vancouver", 2, 4),
//	}
//	res, err := diva.Anonymize(rel, sigma, diva.Options{
//		K:        3,
//		Strategy: diva.MaxFanOut,
//		Seed:     42,
//	})
//	if err != nil { ... }
//	diva.WriteCSV(os.Stdout, res.Output)
package diva

import (
	"io"
	"math/rand/v2"

	"diva/internal/anon"
	"diva/internal/cluster"
	"diva/internal/constraint"
	"diva/internal/core"
	"diva/internal/hierarchy"
	"diva/internal/metrics"
	"diva/internal/privacy"
	"diva/internal/relation"
	"diva/internal/search"
)

// Re-exported relational substrate types. See the internal/relation package
// for full documentation.
type (
	// Relation is a dictionary-encoded tuple store over a fixed schema.
	Relation = relation.Relation
	// Schema is an ordered list of attributes with privacy roles.
	Schema = relation.Schema
	// Attribute describes one column: name, role and kind.
	Attribute = relation.Attribute
	// Role classifies an attribute as QI, Sensitive or Identifier.
	Role = relation.Role
	// Kind classifies an attribute domain as Categorical or Numeric.
	Kind = relation.Kind
)

// Attribute roles and kinds.
const (
	QI          = relation.QI
	Sensitive   = relation.Sensitive
	Identifier  = relation.Identifier
	Categorical = relation.Categorical
	Numeric     = relation.Numeric
)

// Star is the textual rendering of the suppression marker ★.
const Star = relation.Star

// Hierarchy is a value generalization hierarchy for one attribute; see
// NewIntervalHierarchy and ParseHierarchy.
type Hierarchy = hierarchy.Hierarchy

// Hierarchies maps attribute names to their generalization hierarchies.
type Hierarchies = hierarchy.Set

// Constraint is a diversity constraint σ = (X[t], λl, λr).
type Constraint = constraint.Constraint

// Constraints is a set of diversity constraints Σ.
type Constraints = constraint.Set

// Result carries a DIVA run's output relation and diagnostics.
type Result = core.Result

// Strategy selects DIVA's coloring node order.
type Strategy = search.Strategy

// Node-selection strategies for the diverse-clustering search.
const (
	// Basic picks random nodes (DIVA-Basic).
	Basic = search.Basic
	// MinChoice picks the most constrained node first.
	MinChoice = search.MinChoice
	// MaxFanOut picks the node with the most uncolored neighbors first.
	MaxFanOut = search.MaxFanOut
)

// ErrNoDiverseClustering is returned when no k-anonymous relation satisfying
// the constraints exists (or none was found within the search budget).
var ErrNoDiverseClustering = core.ErrNoDiverseClustering

// NewSchema builds a schema from attributes; names must be unique.
func NewSchema(attrs ...Attribute) (*Schema, error) { return relation.NewSchema(attrs...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(attrs ...Attribute) *Schema { return relation.MustSchema(attrs...) }

// NewRelation returns an empty relation over schema.
func NewRelation(schema *Schema) *Relation { return relation.New(schema) }

// ReadCSV loads a relation from CSV whose header matches schema's attribute
// names.
func ReadCSV(r io.Reader, schema *Schema) (*Relation, error) { return relation.ReadCSV(r, schema) }

// ReadAnnotatedCSV loads a relation from CSV whose header carries
// "name:role[:kind]" annotations.
func ReadAnnotatedCSV(r io.Reader) (*Relation, error) { return relation.ReadAnnotatedCSV(r) }

// WriteCSV writes a relation as CSV with a plain header.
func WriteCSV(w io.Writer, rel *Relation) error { return relation.WriteCSV(w, rel) }

// NewConstraint returns a single-attribute diversity constraint
// (attr[value], lower, upper).
func NewConstraint(attr, value string, lower, upper int) Constraint {
	return constraint.New(attr, value, lower, upper)
}

// NewMultiConstraint returns a multi-attribute diversity constraint over
// parallel attrs and values.
func NewMultiConstraint(attrs, values []string, lower, upper int) Constraint {
	return constraint.NewMulti(attrs, values, lower, upper)
}

// ParseConstraint parses "ATTR[value], lower, upper" (optionally several
// ATTR[value] terms).
func ParseConstraint(line string) (Constraint, error) { return constraint.Parse(line) }

// ParseConstraints reads one constraint per line; '#' starts a comment.
func ParseConstraints(r io.Reader) (Constraints, error) { return constraint.ParseSet(r) }

// Options configures Anonymize.
type Options struct {
	// K is the privacy parameter: minimum QI-group size. Required, ≥ 1.
	K int
	// Strategy is the coloring node order; the zero value is Basic. The
	// paper's best-performing strategy is MaxFanOut.
	Strategy Strategy
	// Seed makes the run reproducible. Two runs with equal inputs and
	// seeds produce identical outputs.
	Seed uint64
	// MaxCandidates caps candidate clusterings per constraint (0 = 64).
	MaxCandidates int
	// MaxSteps caps coloring search steps (0 = 1,000,000).
	MaxSteps int
	// Baseline selects the off-the-shelf anonymizer for tuples outside the
	// diverse clustering: "k-member" (default), "oka" or "mondrian".
	Baseline string
	// SampleCap bounds k-member's greedy candidate scans (0 = exact). The
	// experiment harness uses 512 on large relations.
	SampleCap int
	// LDiversity, when ≥ 2, additionally requires distinct l-diversity:
	// every QI-group of the output must carry at least LDiversity distinct
	// values of every sensitive attribute.
	LDiversity int
	// Parallel, when > 0, runs that many concurrent coloring searches (a
	// strategy portfolio) and takes the first result.
	Parallel int
	// Hierarchies, when non-nil, renders clusters by generalization: cells
	// a cluster disagrees on lift to the least common ancestor of its
	// values ("[30-39]") instead of ★. Attributes without a hierarchy fall
	// back to suppression. Note Verify rejects generalized outputs (the
	// strict R ⊑ R′ relation holds only under suppression); check them
	// with IsKAnonymous, Constraints.SatisfiedBy and NCP instead.
	Hierarchies Hierarchies
}

func (o Options) rng() *rand.Rand {
	return rand.New(rand.NewPCG(o.Seed, o.Seed^0xda3e39cb94b95bdb))
}

func (o Options) partitioner(rng *rand.Rand) anon.Partitioner {
	switch o.Baseline {
	case "", "k-member", "kmember":
		return &anon.KMember{Rng: rng, SampleCap: o.SampleCap}
	case "oka", "OKA":
		return &anon.OKA{Rng: rng}
	case "mondrian", "Mondrian":
		return &anon.Mondrian{}
	default:
		return nil
	}
}

// Anonymize runs DIVA: it returns a k-anonymous relation R′ with R ⊑ R′
// satisfying every constraint in sigma, with minimal suppression. It
// returns an error wrapping ErrNoDiverseClustering when no such relation
// exists.
func Anonymize(rel *Relation, sigma Constraints, opts Options) (*Result, error) {
	rng := opts.rng()
	var crit privacy.Criterion
	if opts.LDiversity >= 2 {
		crit = privacy.DistinctLDiversity{L: opts.LDiversity}
	}
	var p anon.Partitioner
	switch opts.Baseline {
	case "", "k-member", "kmember":
		p = &anon.KMember{Rng: rng, SampleCap: opts.SampleCap, Criterion: crit}
	case "mondrian", "Mondrian":
		p = &anon.Mondrian{Criterion: crit}
	case "oka", "OKA":
		if crit != nil {
			return nil, &UnknownBaselineError{Name: opts.Baseline + " (OKA does not support l-diversity; use k-member or mondrian)"}
		}
		p = &anon.OKA{Rng: rng}
	default:
		return nil, &UnknownBaselineError{Name: opts.Baseline}
	}
	return core.Anonymize(rel, sigma, core.Options{
		K:           opts.K,
		Strategy:    opts.Strategy,
		Rng:         rng,
		Cluster:     cluster.Options{MaxCandidates: opts.MaxCandidates},
		MaxSteps:    opts.MaxSteps,
		Anonymizer:  p,
		Criterion:   crit,
		Parallel:    opts.Parallel,
		Hierarchies: opts.Hierarchies,
	})
}

// NewIntervalHierarchy builds a numeric generalization hierarchy over
// [lo, hi]: level ℓ groups values into intervals of width base^ℓ, topped by
// ★. See the hierarchy package for details.
func NewIntervalHierarchy(attr string, lo, hi, base, levels int) (*Hierarchy, error) {
	return hierarchy.Intervals(attr, lo, hi, base, levels)
}

// ParseHierarchy reads a categorical hierarchy from "child -> parent" lines
// ('#' comments, ★ or "*" as the root).
func ParseHierarchy(attr, text string) (*Hierarchy, error) {
	return hierarchy.ParseTable(attr, text)
}

// NCP returns the normalized certainty penalty of rel under the given
// hierarchies: the mean per-cell generalization loss over QI cells, in
// [0, 1]. Without hierarchies it equals 1 − Accuracy.
func NCP(rel *Relation, hs Hierarchies) float64 { return hierarchy.NCP(rel, hs) }

// IsLDiverse reports whether every QI-group of rel carries at least l
// distinct values of every sensitive attribute (distinct l-diversity).
func IsLDiverse(rel *Relation, l int) bool {
	ok, _ := privacy.Satisfies(rel, privacy.DistinctLDiversity{L: l})
	return ok
}

// AnonymizeBaseline runs one of the classical k-anonymizers ("k-member",
// "oka", "mondrian") over the whole relation without diversity constraints,
// returning the suppressed k-anonymous relation.
func AnonymizeBaseline(rel *Relation, baseline string, opts Options) (*Relation, error) {
	rng := opts.rng()
	o := opts
	o.Baseline = baseline
	p := o.partitioner(rng)
	if p == nil {
		return nil, &UnknownBaselineError{Name: baseline}
	}
	return core.RunBaseline(rel, p, opts.K)
}

// UnknownBaselineError reports an unrecognized baseline name.
type UnknownBaselineError struct{ Name string }

func (e *UnknownBaselineError) Error() string {
	return "diva: unknown baseline algorithm " + e.Name + ` (want "k-member", "oka" or "mondrian")`
}

// Verify checks that res is a valid (k, Σ)-anonymization of orig: R ⊑ R′
// up to reordering, k-anonymity, and R′ |= Σ.
func Verify(orig *Relation, res *Result, sigma Constraints, k int) error {
	return core.Verify(orig, res, sigma, k)
}

// IsKAnonymous reports whether every tuple lies in a QI-group of ≥ k tuples.
func IsKAnonymous(rel *Relation, k int) bool { return metrics.IsKAnonymous(rel, k) }

// SuppressionLoss returns the number of suppressed QI cells (★s).
func SuppressionLoss(rel *Relation) int { return metrics.SuppressionLoss(rel) }

// Accuracy returns the fraction of QI cells preserved, in [0, 1].
func Accuracy(rel *Relation) float64 { return metrics.Accuracy(rel) }

// Discernibility returns the Bayardo–Agrawal discernibility penalty.
func Discernibility(rel *Relation, k int) int { return metrics.Discernibility(rel, k) }

// ConflictRate returns cf(Σ) over rel: the mean pairwise target-tuple
// overlap of the constraints, in [0, 1].
func ConflictRate(rel *Relation, sigma Constraints) (float64, error) {
	bounds, err := sigma.Bind(rel)
	if err != nil {
		return 0, err
	}
	return constraint.SetConflict(rel, bounds), nil
}
