package diva_test

// Integration tests exercising whole pipelines across packages: dataset
// generation → constraint generation → DIVA → metrics → CSV, plus failure
// injection at every stage boundary.

import (
	"bytes"
	"context"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"diva"
	"diva/internal/constraint"
	"diva/internal/dataset"
	"diva/internal/metrics"
	"diva/internal/search"
)

// TestPipelinePopSyn runs the full pipeline on every distribution and
// strategy at small scale: generate, derive constraints, anonymize, verify
// all three output conditions, round-trip through CSV.
func TestPipelinePopSyn(t *testing.T) {
	for _, dist := range []dataset.Distribution{dataset.Zipfian, dataset.Uniform, dataset.Gaussian} {
		for _, strat := range []diva.Strategy{diva.Basic, diva.MinChoice, diva.MaxFanOut} {
			t.Run(dist.String()+"/"+strat.String(), func(t *testing.T) {
				rel := dataset.PopSyn(dist).Generate(1500, 7)
				sigma, err := constraint.Proportional(rel, constraint.GenOptions{
					Count: 5,
					K:     6,
					Rng:   rand.New(rand.NewPCG(3, uint64(dist))),
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{
					K: 6, Strategy: strat, Seed: 11, SampleCap: 128,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := diva.Verify(rel, res, sigma, 6); err != nil {
					t.Fatal(err)
				}

				// CSV round trip preserves the anonymized relation exactly.
				var buf bytes.Buffer
				if err := diva.WriteCSV(&buf, res.Output); err != nil {
					t.Fatal(err)
				}
				back, err := diva.ReadCSV(strings.NewReader(buf.String()), res.Output.Schema())
				if err != nil {
					t.Fatal(err)
				}
				if back.Len() != res.Output.Len() {
					t.Fatalf("CSV round trip changed cardinality: %d vs %d", back.Len(), res.Output.Len())
				}
				ok, err := sigma.SatisfiedBy(back)
				if err != nil || !ok {
					t.Fatalf("re-read relation violates Σ (err=%v)", err)
				}
			})
		}
	}
}

// TestPipelineConstraintClasses drives all three constraint generator
// classes through DIVA.
func TestPipelineConstraintClasses(t *testing.T) {
	rel := dataset.PopSyn(dataset.Uniform).Generate(2000, 9)
	rng := func() *rand.Rand { return rand.New(rand.NewPCG(1, 9)) }
	gens := map[string]func() (constraint.Set, error){
		"proportional": func() (constraint.Set, error) {
			return constraint.Proportional(rel, constraint.GenOptions{Count: 4, K: 5, Rng: rng()})
		},
		"min-frequency": func() (constraint.Set, error) {
			return constraint.MinimumFrequency(rel, constraint.GenOptions{Count: 4, K: 5, Rng: rng()}, 0.1)
		},
		"average": func() (constraint.Set, error) {
			return constraint.Average(rel, constraint.GenOptions{Count: 4, K: 5, Rng: rng()})
		},
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			sigma, err := gen()
			if err != nil {
				t.Fatal(err)
			}
			res, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 5, Seed: 2, SampleCap: 128})
			if err != nil {
				t.Skipf("class %s produced an unsatisfiable set on this draw: %v", name, err)
			}
			if err := diva.Verify(rel, res, sigma, 5); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPipelineAllBaselinesAgainstConstraints quantifies the motivating
// claim: constraint-blind baselines violate diversity constraints that
// DIVA guarantees, on at least some workloads.
func TestPipelineAllBaselinesAgainstConstraints(t *testing.T) {
	rel := dataset.PopSyn(dataset.Zipfian).Generate(3000, 4)
	// Demand 85% visibility of two minority values: baselines suppress
	// minority cells freely, DIVA must keep them.
	var sigma diva.Constraints
	eth, _ := rel.Schema().Index("ETH")
	freqs := rel.ValueFrequencies(eth)
	type vf struct {
		code uint32
		n    int
	}
	var all []vf
	for code, n := range freqs {
		all = append(all, vf{code, n})
	}
	// Two smallest values with workable support.
	for len(all) > 0 && len(sigma) < 2 {
		minIdx := 0
		for i := range all {
			if all[i].n < all[minIdx].n {
				minIdx = i
			}
		}
		v := all[minIdx]
		all = append(all[:minIdx], all[minIdx+1:]...)
		if v.n < 30 {
			continue
		}
		lo := v.n * 85 / 100
		sigma = append(sigma, diva.NewConstraint("ETH", rel.Dict(eth).Value(v.code), lo, v.n))
	}
	if len(sigma) < 2 {
		t.Fatal("workload construction failed")
	}

	res, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 8, Strategy: diva.MaxFanOut, Seed: 6, SampleCap: 128})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := sigma.SatisfiedBy(res.Output); !ok {
		t.Fatal("DIVA violated its own constraints")
	}

	violations := 0
	for _, b := range []diva.Baseline{diva.KMember, diva.OKA, diva.Mondrian} {
		out, err := diva.AnonymizeBaselineContext(context.Background(), rel, b, diva.Options{K: 8, Seed: 6, SampleCap: 128})
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := sigma.SatisfiedBy(out); !ok {
			violations++
		}
	}
	if violations == 0 {
		t.Log("note: all baselines satisfied Σ on this draw (allowed, but the workload aims otherwise)")
	}
}

// TestFailureInjection covers the error surface across stage boundaries.
func TestFailureInjection(t *testing.T) {
	rel := dataset.Credit().Generate(200, 3)

	t.Run("k larger than relation", func(t *testing.T) {
		_, err := diva.AnonymizeContext(context.Background(), rel, nil, diva.Options{K: 500, Seed: 1})
		if !errors.Is(err, diva.ErrNoDiverseClustering) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("constraint over unknown attribute", func(t *testing.T) {
		sigma := diva.Constraints{diva.NewConstraint("GHOST", "x", 1, 5)}
		if _, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 5, Seed: 1}); err == nil {
			t.Fatal("unknown attribute accepted")
		}
	})
	t.Run("unseen value with positive floor", func(t *testing.T) {
		sigma := diva.Constraints{diva.NewConstraint("SEX", "Other", 1, 5)}
		_, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 5, Seed: 1})
		if !errors.Is(err, diva.ErrNoDiverseClustering) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unseen value with zero floor", func(t *testing.T) {
		sigma := diva.Constraints{diva.NewConstraint("SEX", "Other", 0, 5)}
		res, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 5, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := diva.Verify(rel, res, sigma, 5); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("upper bound below k", func(t *testing.T) {
		// A QI target needing 1–3 preserved occurrences cannot be met with
		// k = 5 clusters (any preserved cluster has ≥ 5 tuples).
		sigma := diva.Constraints{diva.NewConstraint("SEX", "Male", 1, 3)}
		_, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 5, Seed: 1})
		if !errors.Is(err, diva.ErrNoDiverseClustering) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("tiny search budget", func(t *testing.T) {
		sigma := diva.Constraints{
			diva.NewConstraint("SEX", "Male", 10, 200),
			diva.NewConstraint("HOUSING", "Own", 10, 200),
		}
		// MaxSteps = 1 allows one assignment; two constraints need two.
		_, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 5, Seed: 1, MaxSteps: 1})
		if !errors.Is(err, diva.ErrNoDiverseClustering) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("malformed CSV", func(t *testing.T) {
		if _, err := diva.ReadAnnotatedCSV(strings.NewReader("A:wizard\nx\n")); err == nil {
			t.Fatal("bad role accepted")
		}
	})
}

// TestConflictSweepInvariant: across the conflict knob, DIVA either
// satisfies Σ or fails loudly; it never emits a violating relation.
func TestConflictSweepInvariant(t *testing.T) {
	rel := dataset.PantheonConflict(0.9).Generate(3000, 8)
	for _, cf := range []float64{0, 0.5, 1} {
		rng := rand.New(rand.NewPCG(2, uint64(cf*10)))
		sigma, err := constraint.WithConflict(rel, "OCCUPATION", "CONTINENT", constraint.GenOptions{
			Count: 4, K: 5, Rng: rng,
		}, cf)
		if err != nil {
			t.Fatal(err)
		}
		res, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 5, Seed: 3, SampleCap: 128})
		if err != nil {
			continue
		}
		if ok, _ := sigma.SatisfiedBy(res.Output); !ok {
			t.Fatalf("cf=%v: output violates Σ", cf)
		}
		if !metrics.IsKAnonymous(res.Output, 5) {
			t.Fatalf("cf=%v: output not 5-anonymous", cf)
		}
	}
}

// TestStrategiesAgreeOnSatisfiability: on a batch of random instances, if
// one strategy finds a diverse clustering, the others must too (they search
// the same space exhaustively within budget).
func TestStrategiesAgreeOnSatisfiability(t *testing.T) {
	rel := dataset.PopSyn(dataset.Gaussian).Generate(800, 13)
	for trial := 0; trial < 6; trial++ {
		sigma, err := constraint.Proportional(rel, constraint.GenOptions{
			Count: 3, K: 4, Rng: rand.New(rand.NewPCG(uint64(trial), 5)),
		})
		if err != nil {
			t.Fatal(err)
		}
		results := map[search.Strategy]bool{}
		for _, strat := range []diva.Strategy{diva.Basic, diva.MinChoice, diva.MaxFanOut} {
			_, err := diva.AnonymizeContext(context.Background(), rel, sigma, diva.Options{K: 4, Strategy: strat, Seed: 21, SampleCap: 64})
			results[strat] = err == nil
		}
		if results[diva.Basic] != results[diva.MinChoice] || results[diva.MinChoice] != results[diva.MaxFanOut] {
			t.Fatalf("trial %d: strategies disagree on satisfiability: %v", trial, results)
		}
	}
}
